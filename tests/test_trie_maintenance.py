"""Tests for dynamic trie maintenance (deletion) and set-trie searches."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tries.patricia import PatriciaTrie
from repro.tries.set_patricia import SetPatriciaTrie
from repro.tries.set_trie import SetTrie
from tests.test_patricia_trie import brute_subsets, random_signatures

BITS = 24


class TestPatriciaRemove:
    def test_remove_missing_returns_none(self):
        trie = PatriciaTrie(8)
        trie.insert(0b1)
        assert trie.remove(0b10) is None
        assert len(trie) == 1

    def test_remove_from_empty_trie(self):
        assert PatriciaTrie(8).remove(0) is None

    def test_remove_only_leaf_empties_trie(self):
        trie = PatriciaTrie(8)
        trie.insert(0b101).append("x")
        items = trie.remove(0b101)
        assert items == ["x"]
        assert len(trie) == 0
        assert trie.root is None
        assert trie.subset_leaves(0xFF) == []

    def test_remove_merges_sibling(self):
        trie = PatriciaTrie(4)
        for sig in (0b0101, 0b0110, 0b1011):
            trie.insert(sig)
        trie.remove(0b0110)
        trie.check_invariants()
        assert {leaf.signature for leaf in trie.leaves()} == {0b0101, 0b1011}
        assert trie.node_count() == 3

    def test_reinsert_after_remove(self):
        trie = PatriciaTrie(16)
        trie.insert(0xF0F0).append(1)
        trie.remove(0xF0F0)
        items = trie.insert(0xF0F0)
        assert items == []
        trie.check_invariants()

    def test_random_insert_delete_invariants(self):
        rng = random.Random(800)
        trie = PatriciaTrie(BITS)
        alive: set[int] = set()
        for _ in range(600):
            sig = rng.getrandbits(BITS)
            if sig in alive and rng.random() < 0.6:
                trie.remove(sig)
                alive.discard(sig)
            else:
                trie.insert(sig)
                alive.add(sig)
            if rng.random() < 0.05:
                trie.check_invariants()
        trie.check_invariants()
        assert {leaf.signature for leaf in trie.leaves()} == alive
        query = rng.getrandbits(BITS)
        found = {leaf.signature for leaf in trie.subset_leaves(query)}
        assert found == brute_subsets(list(alive), query)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, (1 << 12) - 1), st.booleans()), max_size=60))
    def test_hypothesis_insert_delete(self, operations):
        trie = PatriciaTrie(12)
        alive: set[int] = set()
        for sig, is_delete in operations:
            if is_delete:
                removed = trie.remove(sig)
                assert (removed is not None) == (sig in alive)
                alive.discard(sig)
            else:
                trie.insert(sig)
                alive.add(sig)
        trie.check_invariants()
        assert {leaf.signature for leaf in trie.leaves()} == alive
        assert len(trie) == len(alive)


class TestSetPatriciaRemove:
    def build(self, sets):
        trie = SetPatriciaTrie()
        for i, s in enumerate(sets):
            trie.insert(tuple(sorted(s)), rid=i)
        return trie

    def test_remove_missing(self):
        trie = self.build([(1, 2)])
        assert not trie.remove((1, 3), rid=0)
        assert not trie.remove((1, 2), rid=9)
        assert len(trie) == 1

    def test_remove_leaf_and_merge(self):
        trie = self.build([(1, 2, 3), (1, 2, 5)])
        assert trie.remove((1, 2, 5), rid=1)
        trie.check_invariants()
        assert dict(trie.stored_sets()) == {(1, 2, 3): [0]}
        # The split node must have re-merged into a single run.
        assert trie.node_count() == 2

    def test_remove_mid_node_keeps_children(self):
        trie = self.build([(1, 2), (1, 2, 3, 4)])
        assert trie.remove((1, 2), rid=0)
        trie.check_invariants()
        assert dict(trie.stored_sets()) == {(1, 2, 3, 4): [1]}

    def test_remove_empty_set_at_root(self):
        trie = self.build([()])
        assert trie.remove((), rid=0)
        assert len(trie) == 0

    def test_remove_one_of_duplicates(self):
        trie = self.build([(3, 4), (3, 4)])
        assert trie.remove((3, 4), rid=0)
        assert dict(trie.stored_sets()) == {(3, 4): [1]}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.frozensets(st.integers(0, 30), max_size=6), min_size=1, max_size=25),
           st.data())
    def test_hypothesis_insert_delete(self, sets, data):
        trie = SetPatriciaTrie()
        for i, s in enumerate(sets):
            trie.insert(tuple(sorted(s)), rid=i)
        to_delete = data.draw(st.sets(st.integers(0, len(sets) - 1)))
        for rid in to_delete:
            assert trie.remove(tuple(sorted(sets[rid])), rid=rid)
        trie.check_invariants()
        expected: dict[tuple[int, ...], list[int]] = {}
        for i, s in enumerate(sets):
            if i not in to_delete:
                expected.setdefault(tuple(sorted(s)), []).append(i)
        stored = {k: sorted(v) for k, v in trie.stored_sets()}
        assert stored == expected


class TestSetTrieSearch:
    def brute(self, sets, query, op):
        return sorted(
            i for i, s in enumerate(sets)
            if (s <= query if op == "sub" else s >= query)
        )

    @pytest.mark.parametrize("trie_cls", [SetTrie, SetPatriciaTrie])
    def test_subsets_of_matches_brute_force(self, trie_cls):
        rng = random.Random(801)
        sets = [frozenset(rng.sample(range(30), rng.randint(0, 6))) for _ in range(150)]
        trie = trie_cls()
        for i, s in enumerate(sets):
            trie.insert(tuple(sorted(s)), rid=i)
        for _ in range(30):
            query = frozenset(rng.sample(range(30), rng.randint(0, 12)))
            assert sorted(trie.subsets_of(query)) == self.brute(sets, query, "sub")

    @pytest.mark.parametrize("trie_cls", [SetTrie, SetPatriciaTrie])
    def test_supersets_of_matches_brute_force(self, trie_cls):
        rng = random.Random(802)
        sets = [frozenset(rng.sample(range(30), rng.randint(0, 9))) for _ in range(150)]
        trie = trie_cls()
        for i, s in enumerate(sets):
            trie.insert(tuple(sorted(s)), rid=i)
        for _ in range(30):
            query = frozenset(rng.sample(range(30), rng.randint(0, 5)))
            assert sorted(trie.supersets_of(query)) == self.brute(sets, query, "sup")

    @pytest.mark.parametrize("trie_cls", [SetTrie, SetPatriciaTrie])
    def test_empty_query_supersets_returns_all(self, trie_cls):
        trie = trie_cls()
        trie.insert((1, 2), rid=0)
        trie.insert((), rid=1)
        assert sorted(trie.supersets_of(frozenset())) == [0, 1]

    @pytest.mark.parametrize("trie_cls", [SetTrie, SetPatriciaTrie])
    def test_empty_query_subsets_returns_empty_sets_only(self, trie_cls):
        trie = trie_cls()
        trie.insert((1,), rid=0)
        trie.insert((), rid=1)
        assert trie.subsets_of(frozenset()) == [1]
