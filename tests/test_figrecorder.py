"""Unit tests for the benchmark figure recorder (render paths)."""

from __future__ import annotations

import benchmarks.figrecorder as figrecorder


class TestRecorder:
    def setup_method(self):
        figrecorder.RESULTS.clear()
        figrecorder.UNITS.clear()

    def teardown_method(self):
        figrecorder.RESULTS.clear()
        figrecorder.UNITS.clear()

    def test_record_accumulates(self):
        figrecorder.record("figX", "a", "alg1", 1.0)
        figrecorder.record("figX", "a", "alg2", 2.0)
        figrecorder.record("figX", "b", "alg1", 3.0)
        assert figrecorder.RESULTS["figX"]["a"]["alg2"] == 2.0
        assert list(figrecorder.RESULTS["figX"]) == ["a", "b"]

    def test_non_seconds_unit_sticks(self):
        figrecorder.record("figY", "a", "alg", 10.0)
        figrecorder.record("figY", "a", "alg2", 20.0, unit="bytes")
        assert figrecorder.UNITS["figY"] == "bytes"

    def test_render_seconds_figure(self):
        figrecorder.record("figZ", "x1", "fast", 0.001)
        figrecorder.record("figZ", "x1", "slow", 1.5)
        blocks = figrecorder.render_figures()
        assert len(blocks) == 1
        assert "1.0ms" in blocks[0] and "1.50s" in blocks[0]

    def test_render_ratio_figure(self):
        figrecorder.record("fig8ish", "ds", "a", 2.0, unit="ratio")
        figrecorder.record("fig8ish", "ds", "b", 1.0, unit="ratio")
        (block,) = figrecorder.render_figures()
        assert "2.0x" in block and "1.0x" in block

    def test_render_missing_point_as_dash(self):
        figrecorder.record("figW", "x1", "a", 1.0)
        figrecorder.record("figW", "x2", "b", 2.0)
        (block,) = figrecorder.render_figures()
        assert "-" in block

    def test_render_plain_unit(self):
        figrecorder.record("figV", "x", "stat", 3.14159, unit="plain")
        (block,) = figrecorder.render_figures()
        assert "3.14" in block
