"""Adversarial and boundary inputs across all algorithms.

Failure-injection-style coverage: shapes that historically break join
implementations — degenerate widths, saturated domains, huge sparse ids,
total-order chains, aliasing of R and S — must neither crash nor corrupt
output for any registered algorithm.
"""

from __future__ import annotations

import pytest

from repro.core.registry import available_algorithms, set_containment_join
from repro.relations.relation import Relation
from tests.conftest import oracle_pairs

JOIN_ALGORITHMS = [name for name in available_algorithms() if name != "nested-loop"]


def check_all(r: Relation, s: Relation, **kwargs) -> None:
    expected = oracle_pairs(r, s)
    for name in JOIN_ALGORITHMS:
        got = set_containment_join(r, s, algorithm=name, **kwargs).pair_set()
        assert got == expected, name


class TestDegenerateShapes:
    def test_both_sides_all_empty_sets(self):
        r = Relation.from_sets([set()] * 5)
        s = Relation.from_sets([set()] * 7)
        check_all(r, s)

    def test_single_tuple_each(self):
        check_all(Relation.from_sets([{1, 2}]), Relation.from_sets([{2}]))

    def test_domain_of_one_element(self):
        r = Relation.from_sets([{0}, set(), {0}])
        s = Relation.from_sets([{0}, set()])
        check_all(r, s)

    def test_one_bit_signature(self):
        """bits=1 collapses every non-empty set to the same signature."""
        r = Relation.from_sets([{1, 5}, {2}, set()])
        s = Relation.from_sets([{5}, {7}, set()])
        for name in ("ptsj", "shj", "tsj", "mwtsj"):
            got = set_containment_join(r, s, algorithm=name, bits=1).pair_set()
            assert got == oracle_pairs(r, s), name

    def test_huge_sparse_element_ids(self):
        """Billion-scale ids must work with explicit signature widths."""
        r = Relation.from_sets([{10 ** 9, 10 ** 12}, {5}])
        s = Relation.from_sets([{10 ** 9}, {10 ** 12}, {6}])
        for name in ("ptsj", "shj", "pretti", "pretti+", "tsj"):
            got = set_containment_join(
                r, s, algorithm=name, **({"bits": 64} if name not in ("pretti", "pretti+") else {})
            ).pair_set()
            assert got == oracle_pairs(r, s), name

    def test_total_order_chain(self):
        sets = [set(range(i)) for i in range(20)]
        r = Relation.from_sets(sets)
        s = Relation.from_sets(sets)
        check_all(r, s)

    def test_saturated_domain(self):
        """Every set nearly covers the whole (tiny) domain."""
        r = Relation.from_sets([set(range(8)) - {i} for i in range(8)])
        s = Relation.from_sets([set(range(8)) - {i, (i + 1) % 8} for i in range(8)])
        check_all(r, s)

    def test_r_and_s_are_same_object(self):
        rel = Relation.from_sets([{1}, {1, 2}, {2, 3}, set()])
        check_all(rel, rel)

    def test_many_duplicate_signatures_distinct_sets(self):
        """Force signature collisions: all sets hash identically at bits=2."""
        r = Relation.from_sets([{0, 2}, {4, 6}, {0, 4}])
        s = Relation.from_sets([{2}, {6}, {0, 2, 4}])
        for name in ("ptsj", "shj", "tsj", "mwtsj"):
            got = set_containment_join(r, s, algorithm=name, bits=2).pair_set()
            assert got == oracle_pairs(r, s), name

    def test_wide_cardinality_spread(self):
        """One 500-element set among singletons (skew stress)."""
        sets = [{i} for i in range(30)] + [set(range(500))]
        r = Relation.from_sets(sets)
        s = Relation.from_sets(sets)
        check_all(r, s)


class TestProbeOnlyAndIndexOnlyEmpty:
    @pytest.mark.parametrize("name", JOIN_ALGORITHMS)
    def test_empty_probe(self, name):
        s = Relation.from_sets([{1}, set()])
        kwargs = {"bits": 8} if name in ("ptsj", "shj", "tsj", "mwtsj", "trie-trie") else {}
        assert len(set_containment_join(Relation([]), s, algorithm=name, **kwargs)) == 0

    @pytest.mark.parametrize("name", JOIN_ALGORITHMS)
    def test_empty_index(self, name):
        r = Relation.from_sets([{1}, set()])
        kwargs = {"bits": 8} if name in ("ptsj", "shj", "tsj", "mwtsj", "trie-trie") else {}
        assert len(set_containment_join(r, Relation([]), algorithm=name, **kwargs)) == 0


class TestDifferentialFuzz:
    """Randomised differential test: many seeds, all algorithms agree."""

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzz_round(self, seed):
        from tests.conftest import random_relation

        r = random_relation(45 + seed * 7, 3 + seed * 2, 20 + seed * 12, seed=1000 + seed)
        s = random_relation(45 + seed * 5, 2 + seed * 2, 20 + seed * 12, seed=2000 + seed)
        check_all(r, s)
