"""Unit tests for the SHJ baseline (Algorithm 2)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.shj import SHJ, iter_submasks, optimal_shj_bits
from repro.errors import AlgorithmError
from repro.relations.relation import Relation
from tests.conftest import TABLE1_EXPECTED, oracle_pairs, random_relation


class TestSubmaskEnumeration:
    def test_enumerates_all_submasks(self):
        assert sorted(iter_submasks(0b101)) == [0, 0b001, 0b100, 0b101]

    def test_zero_mask(self):
        assert list(iter_submasks(0)) == [0]

    def test_count_is_two_to_popcount(self):
        for mask in (0b1, 0b1111, 0b1010101):
            assert len(list(iter_submasks(mask))) == 2 ** mask.bit_count()

    def test_every_yield_is_submask(self):
        mask = 0b110110
        assert all(sub & ~mask == 0 for sub in iter_submasks(mask))


class TestOptimalBits:
    def test_weight_rule(self):
        """b = c / ln 2 ~ 1.44 c."""
        assert optimal_shj_bits(100) == math.ceil(100 / math.log(2))

    def test_clamped_to_minimum(self):
        assert optimal_shj_bits(1) == 16

    def test_clamped_to_maximum(self):
        assert optimal_shj_bits(10 ** 6) == 4096

    def test_invalid_cardinality(self):
        with pytest.raises(AlgorithmError):
            optimal_shj_bits(0)


class TestCorrectness:
    def test_table1_example(self, table1_profiles, table1_preferences):
        result = SHJ().join(table1_profiles, table1_preferences)
        assert result.pair_set() == TABLE1_EXPECTED

    def test_matches_oracle_random(self, small_pair):
        r, s = small_pair
        assert SHJ().join(r, s).pair_set() == oracle_pairs(r, s)

    @pytest.mark.parametrize("partial", [1, 4, 12, 20])
    def test_any_partial_length_is_correct(self, partial, small_pair):
        r, s = small_pair
        assert SHJ(partial_bits=partial).join(r, s).pair_set() == oracle_pairs(r, s)

    @pytest.mark.parametrize("bits", [8, 32, 200])
    def test_any_signature_length_is_correct(self, bits, small_pair):
        r, s = small_pair
        assert SHJ(bits=bits).join(r, s).pair_set() == oracle_pairs(r, s)

    def test_empty_relations(self):
        empty = Relation([])
        other = Relation.from_sets([{1}])
        assert len(SHJ(bits=16).join(empty, other)) == 0
        assert len(SHJ(bits=16).join(other, empty)) == 0

    def test_empty_sets(self):
        r = Relation.from_sets([set(), {1}])
        s = Relation.from_sets([set(), {2}])
        assert SHJ().join(r, s).pair_set() == {(0, 0), (1, 0)}


class TestConfiguration:
    def test_partial_bits_over_20_rejected(self):
        """Paper Sec. III: partial length 'cannot even reach 20 bits'."""
        with pytest.raises(AlgorithmError):
            SHJ(partial_bits=21)

    def test_partial_cap_validated(self):
        with pytest.raises(AlgorithmError):
            SHJ(partial_cap=0)
        with pytest.raises(AlgorithmError):
            SHJ(partial_cap=32)

    def test_partial_grows_with_relation_size(self):
        small_s = random_relation(32, 5, 64, seed=90)
        big_s = random_relation(2048, 5, 64, seed=91)
        probe = random_relation(10, 5, 64, seed=92)
        shj_small = SHJ()
        shj_small.join(probe, small_s)
        shj_big = SHJ()
        shj_big.join(probe, big_s)
        assert shj_big.partial_bits > shj_small.partial_bits

    def test_partial_never_exceeds_signature(self, small_pair):
        r, s = small_pair
        algo = SHJ(bits=6, partial_bits=20)
        algo.join(r, s)
        assert algo.partial_bits <= 6

    def test_enumeration_counters_recorded(self, small_pair):
        r, s = small_pair
        stats = SHJ().join(r, s).stats
        assert stats.extras["submask_enumerations"] >= len(r)
        assert "bucket_entries_scanned" in stats.extras
        assert "partial_bits" in stats.extras

    def test_longer_partial_scans_fewer_entries(self):
        """More hashed bits -> more selective buckets."""
        r = random_relation(120, 8, 64, seed=93)
        s = random_relation(400, 8, 64, seed=94)
        coarse = SHJ(partial_bits=2).join(r, s).stats
        fine = SHJ(partial_bits=14).join(r, s).stats
        assert fine.extras["bucket_entries_scanned"] < coarse.extras["bucket_entries_scanned"]
        assert fine.extras["submask_enumerations"] > coarse.extras["submask_enumerations"]
