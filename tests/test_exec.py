"""Contract tests for the :mod:`repro.exec` executor package.

Three things the PR 6 refactor promises:

* every executor — inline, parallel, resilient, disk, sharded — satisfies
  the :class:`~repro.exec.protocol.Executor` protocol, so planner and CLI
  code can treat them interchangeably;
* :func:`repro.planner.executor.execute_plan` dispatches through the
  :data:`repro.exec.EXECUTOR_CLASSES` registry with no per-class
  branches, and rejects unknown executor names with
  :class:`~repro.errors.PlanError`;
* the pre-refactor import paths (``repro.future.parallel``,
  ``repro.future.resilient``, ``repro.external.disk_join``) keep working
  but emit :class:`DeprecationWarning`, re-exporting the *same* objects.
"""

from __future__ import annotations

import importlib
import sys
import warnings

import pytest

from repro.errors import PlanError
from repro.exec import (
    EXECUTOR_CLASSES,
    BaseExecutor,
    DiskPartitionedJoin,
    Executor,
    InlineJoin,
    ParallelJoin,
    ResilientParallelJoin,
    ShardedJoin,
    executor_class,
)
from repro.core.registry import plan as plan_join
from repro.planner import EXECUTORS, Plan, Workload, execute_plan
from tests.conftest import oracle_pairs, random_relation

ALL_EXECUTORS = (
    InlineJoin,
    ParallelJoin,
    ResilientParallelJoin,
    DiskPartitionedJoin,
    ShardedJoin,
)


@pytest.fixture(scope="module")
def rs_pair():
    r = random_relation(40, 6, 30, seed=601)
    s = random_relation(40, 4, 30, seed=602)
    return r, s


# ----------------------------------------------------------------------
# Protocol conformance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", ALL_EXECUTORS, ids=lambda c: c.name)
def test_every_executor_satisfies_the_protocol(cls):
    instance = cls()
    assert isinstance(instance, Executor)
    assert isinstance(instance, BaseExecutor)
    assert cls.name in EXECUTOR_CLASSES
    assert EXECUTOR_CLASSES[cls.name] is cls


def test_registry_matches_the_plan_schema():
    assert set(EXECUTOR_CLASSES) == set(EXECUTORS)


@pytest.mark.parametrize("cls", ALL_EXECUTORS, ids=lambda c: c.name)
def test_describe_names_executor_and_algorithm(cls):
    description = cls(algorithm="ptsj").describe()
    assert description["executor"] == cls.name
    assert description["algorithm"] == "ptsj"
    # Options are JSON-friendly scalars (what `repro-scj plan` prints).
    for value in description.values():
        assert value is None or isinstance(value, (str, int, float, bool))


@pytest.mark.parametrize("cls", ALL_EXECUTORS, ids=lambda c: c.name)
def test_join_matches_oracle(cls, rs_pair, tmp_path):
    r, s = rs_pair
    kwargs = {"workdir": tmp_path} if cls is DiskPartitionedJoin else {}
    result = cls(algorithm="ptsj", **kwargs).join(r, s)
    assert set(result.pairs) == oracle_pairs(r, s)
    assert result.stats.pairs == len(result.pairs)


def test_prepare_builds_a_probeable_index(rs_pair):
    r, s = rs_pair
    index = InlineJoin(algorithm="ptsj").prepare(s)
    assert set(index.probe_many(r).pairs) == oracle_pairs(r, s)


def test_unknown_executor_name_is_a_plan_error():
    with pytest.raises(PlanError, match="unknown executor"):
        executor_class("quantum")


# ----------------------------------------------------------------------
# Plan dispatch
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "executor, options",
    [
        ("inline", {}),
        ("parallel", {"workers": 2, "chunks": 3}),
        ("resilient", {"workers": 2}),
        ("disk", {"max_tuples": 16}),
        ("sharded", {"workers": 2, "shards": 2}),
    ],
)
def test_execute_plan_dispatches_every_executor(executor, options, rs_pair):
    r, s = rs_pair
    plan = Plan(algorithm="ptsj", executor=executor, executor_options=options)
    result = execute_plan(plan, r, s)
    assert set(result.pairs) == oracle_pairs(r, s)


def test_from_plan_round_trips_options():
    plan = Plan(
        algorithm="pretti+",
        executor="sharded",
        executor_options={"workers": 3, "shards": 5, "strategy": "signature"},
    )
    executor = executor_class(plan.executor).from_plan(plan)
    assert isinstance(executor, ShardedJoin)
    assert (executor.algorithm, executor.workers, executor.shards, executor.strategy) == (
        "pretti+", 3, 5, "signature",
    )


def test_planned_sharded_join_executes(rs_pair):
    r, s = rs_pair
    plan = plan_join(r, s, workload=Workload(workers=2, shards=2))
    assert plan.executor == "sharded"
    result = execute_plan(plan, r, s)
    assert set(result.pairs) == oracle_pairs(r, s)
    assert result.stats.algorithm.startswith("sharded-")


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------
SHIMS = {
    "repro.future.parallel": ("ParallelJoin", ParallelJoin),
    "repro.future.resilient": ("ResilientParallelJoin", ResilientParallelJoin),
    "repro.external.disk_join": ("DiskPartitionedJoin", DiskPartitionedJoin),
}


@pytest.mark.parametrize("module_name", sorted(SHIMS))
def test_old_import_path_warns_and_reexports(module_name):
    symbol, expected = SHIMS[module_name]
    sys.modules.pop(module_name, None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module(module_name)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert deprecations, f"{module_name} import did not warn"
    assert "repro.exec" in str(deprecations[0].message)
    # The shim re-exports the same object, not a divergent copy.
    assert getattr(module, symbol) is expected


def test_package_inits_do_not_warn():
    # repro.future / repro.external themselves import from repro.exec, so
    # existing `from repro.future import ParallelJoin` code stays silent.
    for name in ("repro.future", "repro.external"):
        sys.modules.pop(name, None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        future = importlib.import_module("repro.future")
        external = importlib.import_module("repro.external")
    assert [w for w in caught if issubclass(w.category, DeprecationWarning)] == []
    assert future.ParallelJoin is ParallelJoin
    assert external.DiskPartitionedJoin is DiskPartitionedJoin
