"""Unit tests for the repro-scj command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--size", "10", "-o", "out.txt"]
        )
        assert args.command == "generate" and args.size == 10

    def test_bench_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestGenerate:
    def test_synthetic(self, tmp_path, capsys):
        out = tmp_path / "r.txt"
        code = main(["generate", "--size", "50", "--cardinality", "4",
                     "--domain", "64", "-o", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote 50 tuples" in capsys.readouterr().out

    def test_surrogate(self, tmp_path, capsys):
        out = tmp_path / "f.txt"
        code = main(["generate", "--dataset", "flickr", "--size", "40",
                     "-o", str(out)])
        assert code == 0
        assert "40 tuples" in capsys.readouterr().out

    def test_invalid_config_returns_error_code(self, tmp_path, capsys):
        out = tmp_path / "bad.txt"
        code = main(["generate", "--size", "10", "--cardinality", "50",
                     "--domain", "10", "-o", str(out)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestStatsAndJoin:
    @pytest.fixture
    def dataset_files(self, tmp_path):
        r = tmp_path / "r.txt"
        s = tmp_path / "s.txt"
        main(["generate", "--size", "60", "--cardinality", "8", "--domain",
              "64", "--seed", "1", "-o", str(r)])
        main(["generate", "--size", "60", "--cardinality", "5", "--domain",
              "64", "--seed", "2", "-o", str(s)])
        return r, s

    def test_stats(self, dataset_files, capsys):
        r, _ = dataset_files
        capsys.readouterr()
        assert main(["stats", str(r)]) == 0
        out = capsys.readouterr().out
        assert "|R|" in out and "recommended" in out

    @pytest.mark.parametrize("algorithm", ["ptsj", "pretti+", "auto"])
    def test_join(self, dataset_files, capsys, algorithm):
        r, s = dataset_files
        capsys.readouterr()
        assert main(["join", str(r), str(s), "--algorithm", algorithm]) == 0
        assert "pairs in" in capsys.readouterr().out

    def test_join_writes_output(self, dataset_files, tmp_path, capsys):
        r, s = dataset_files
        out = tmp_path / "pairs.txt"
        assert main(["join", str(r), str(s), "-o", str(out)]) == 0
        assert out.exists()

    def test_join_results_algorithm_independent(self, dataset_files, tmp_path):
        r, s = dataset_files
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        main(["join", str(r), str(s), "--algorithm", "ptsj", "-o", str(a)])
        main(["join", str(r), str(s), "--algorithm", "pretti", "-o", str(b)])
        assert a.read_text() == b.read_text()

    def test_join_bits_override(self, dataset_files, capsys):
        r, s = dataset_files
        capsys.readouterr()
        assert main(["join", str(r), str(s), "--algorithm", "ptsj",
                     "--bits", "64"]) == 0


class TestProbe:
    @pytest.fixture
    def probe_files(self, tmp_path):
        s = tmp_path / "s.txt"
        q1 = tmp_path / "q1.txt"
        q2 = tmp_path / "q2.txt"
        main(["generate", "--size", "40", "--cardinality", "4", "--domain",
              "48", "--seed", "7", "-o", str(s)])
        main(["generate", "--size", "25", "--cardinality", "7", "--domain",
              "48", "--seed", "8", "-o", str(q1)])
        main(["generate", "--size", "25", "--cardinality", "7", "--domain",
              "48", "--seed", "9", "-o", str(q2)])
        return s, q1, q2

    def test_probe_builds_once_and_serves_both_batches(self, probe_files, capsys):
        s, q1, q2 = probe_files
        capsys.readouterr()
        assert main(["probe", str(s), str(q1), str(q2),
                     "--algorithm", "ptsj"]) == 0
        out = capsys.readouterr().out
        assert "prepared index over 40 tuples" in out
        assert "probe #1, reused_index=0" in out
        # The second probe reuses the index: zero build time reported.
        assert "probe #2, reused_index=1, build 0us" in out
        assert "build" in out and "(once)" in out

    def test_probe_pairs_match_join(self, probe_files, tmp_path, capsys):
        s, q1, _ = probe_files
        probe_out = tmp_path / "probe_pairs.txt"
        join_out = tmp_path / "join_pairs.txt"
        assert main(["probe", str(s), str(q1), "--algorithm", "ptsj",
                     "-o", str(probe_out)]) == 0
        assert main(["join", str(q1), str(s), "--algorithm", "ptsj",
                     "-o", str(join_out)]) == 0
        assert probe_out.read_text() == join_out.read_text()

    def test_probe_auto_algorithm(self, probe_files, capsys):
        s, q1, q2 = probe_files
        capsys.readouterr()
        assert main(["probe", str(s), str(q1), str(q2)]) == 0
        assert "prepared index" in capsys.readouterr().out

    def test_probe_unknown_algorithm_errors(self, probe_files, capsys):
        s, q1, _ = probe_files
        assert main(["probe", str(s), str(q1), "--algorithm", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestBench:
    def test_fig6a_small(self, capsys):
        assert main(["bench", "fig6a", "--base", "32"]) == 0
        out = capsys.readouterr().out
        assert "Memory per tuple" in out

    def test_fig6c_small(self, capsys):
        assert main(["bench", "fig6c", "--base", "32"]) == 0
        out = capsys.readouterr().out
        assert "ptsj" in out and "pretti+" in out

    def test_fig5b_small(self, capsys):
        assert main(["bench", "fig5b", "--base", "16"]) == 0
        assert "b/c" in capsys.readouterr().out

    def test_fig8_small(self, capsys):
        assert main(["bench", "fig8", "--base", "12"]) == 0
        assert "webbase" in capsys.readouterr().out


class TestJoinStrategies:
    @pytest.fixture
    def files(self, tmp_path):
        r = tmp_path / "r.txt"
        s = tmp_path / "s.txt"
        main(["generate", "--size", "40", "--cardinality", "6", "--domain",
              "48", "--seed", "5", "-o", str(r)])
        main(["generate", "--size", "40", "--cardinality", "4", "--domain",
              "48", "--seed", "6", "-o", str(s)])
        return r, s

    @pytest.mark.parametrize("strategy", ["disk", "psj", "parallel"])
    def test_strategies_match_memory(self, files, tmp_path, strategy):
        r, s = files
        memory_out = tmp_path / "mem.txt"
        other_out = tmp_path / f"{strategy}.txt"
        assert main(["join", str(r), str(s), "--algorithm", "ptsj",
                     "-o", str(memory_out)]) == 0
        assert main(["join", str(r), str(s), "--algorithm", "ptsj",
                     "--strategy", strategy, "--partitions", "3",
                     "-o", str(other_out)]) == 0
        assert memory_out.read_text() == other_out.read_text()

    def test_strategy_with_auto_algorithm(self, files, capsys):
        r, s = files
        capsys.readouterr()
        assert main(["join", str(r), str(s), "--strategy", "psj"]) == 0
        assert "psj-" in capsys.readouterr().out

    def test_bench_fig7(self, capsys):
        assert main(["bench", "fig7c", "--base", "24"]) == 0
        assert "zipf" in capsys.readouterr().out


class TestEndToEndPipeline:
    def test_generate_join_validate_pipeline(self, tmp_path):
        """generate -> stats -> join -> output file -> independent validation."""
        from repro.core.validation import verify_join_result
        from repro.relations.io import read_join_result, read_relation

        r_path, s_path = tmp_path / "r.txt", tmp_path / "s.txt"
        out_path = tmp_path / "pairs.txt"
        assert main(["generate", "--size", "80", "--cardinality", "6",
                     "--domain", "96", "--seed", "21", "-o", str(r_path)]) == 0
        assert main(["generate", "--size", "80", "--cardinality", "4",
                     "--domain", "96", "--seed", "22", "-o", str(s_path)]) == 0
        assert main(["stats", str(r_path)]) == 0
        assert main(["join", str(r_path), str(s_path), "--algorithm", "auto",
                     "-o", str(out_path)]) == 0
        pairs = read_join_result(out_path)
        report = verify_join_result(read_relation(r_path), read_relation(s_path),
                                    pairs, sample=None)
        report.raise_on_failure()

    @pytest.mark.parametrize("experiment", ["fig6b", "fig6d", "fig6e", "fig6f"])
    def test_bench_experiments_run_at_tiny_scale(self, experiment, capsys):
        assert main(["bench", experiment, "--base", "32"]) == 0
        assert "ptsj" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["mwtsj", "trie-trie"])
    def test_future_algorithms_via_cli(self, tmp_path, capsys, algorithm):
        r_path = tmp_path / "r.txt"
        main(["generate", "--size", "30", "--cardinality", "4", "--domain",
              "40", "--seed", "31", "-o", str(r_path)])
        capsys.readouterr()
        assert main(["join", str(r_path), str(r_path),
                     "--algorithm", algorithm]) == 0
        assert algorithm in capsys.readouterr().out
