"""Tests for the runtime invariant sanitizer (``REPRO_SANITIZE=1``).

Each structural check is exercised both ways: a freshly-built structure
passes, and an injected corruption raises :class:`SanitizerError` naming
the violating node path.  The env-gated ``maybe_check_*`` hooks are
verified to be inert with the variable unset and active with it set, and
every registry algorithm is smoke-joined under sanitize mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro import (
    Relation,
    SanitizerError,
    available_algorithms,
    plan,
    prepare_index,
)
from repro.analysis import sanitizer
from repro.datagen import SyntheticConfig, generate_relation
from repro.index.inverted import InvertedIndex
from repro.obs import Tracer


@pytest.fixture
def sanitize_on(monkeypatch):
    monkeypatch.setenv(sanitizer.ENV_VAR, "1")


@pytest.fixture
def sanitize_off(monkeypatch):
    monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)


@pytest.fixture(scope="module")
def relations():
    r = generate_relation(
        SyntheticConfig(size=80, domain=40, avg_cardinality=4, seed=11)
    )
    s = generate_relation(
        SyntheticConfig(size=120, domain=40, avg_cardinality=6, seed=12)
    )
    return r, s


def _first_leaf(trie):
    node, path = trie.root, "root"
    while not node.is_leaf:
        node, path = node.left, f"{path}.left"
    return node, path


# ----------------------------------------------------------------------
# Enablement
# ----------------------------------------------------------------------
def test_disabled_by_default(sanitize_off):
    assert not sanitizer.enabled()


@pytest.mark.parametrize("value", ["0", "false", "no", "off", "", "  "])
def test_falsy_values_disable(monkeypatch, value):
    monkeypatch.setenv(sanitizer.ENV_VAR, value)
    assert not sanitizer.enabled()


@pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
def test_truthy_values_enable(monkeypatch, value):
    monkeypatch.setenv(sanitizer.ENV_VAR, value)
    assert sanitizer.enabled()


def test_maybe_hooks_inert_when_disabled(sanitize_off, relations):
    r, s = relations
    idx = prepare_index(s, "ptsj")
    leaf, _ = _first_leaf(idx.trie)
    leaf.signature ^= 1
    # Corrupted, but the gate is off: nothing raises.
    sanitizer.maybe_check_patricia_trie(idx.trie)
    sanitizer.maybe_check_prepared_index(idx)


# ----------------------------------------------------------------------
# Signature checks
# ----------------------------------------------------------------------
def test_check_signature_accepts_fitting_int():
    sanitizer.check_signature(0b1011, 4)


@pytest.mark.parametrize(
    "bad, bits",
    [(True, 8), ("0b1", 8), (-1, 8), (1 << 9, 8)],
)
def test_check_signature_rejects(bad, bits):
    with pytest.raises(SanitizerError):
        sanitizer.check_signature(bad, bits)


# ----------------------------------------------------------------------
# Patricia trie
# ----------------------------------------------------------------------
def test_fresh_patricia_trie_passes(relations):
    _, s = relations
    idx = prepare_index(s, "ptsj")
    sanitizer.check_patricia_trie(idx.trie)


def test_corrupt_leaf_signature_names_the_path(relations):
    _, s = relations
    idx = prepare_index(s, "ptsj")
    leaf, path = _first_leaf(idx.trie)
    leaf.signature ^= 1
    with pytest.raises(SanitizerError) as exc:
        sanitizer.check_patricia_trie(idx.trie)
    assert exc.value.path == path
    assert path.startswith("root")
    assert f"(at {path})" in str(exc.value)


def test_corrupt_leaf_count_detected(relations):
    _, s = relations
    idx = prepare_index(s, "ptsj")
    idx.trie.leaf_count += 1
    with pytest.raises(SanitizerError, match="leaf_count"):
        sanitizer.check_patricia_trie(idx.trie)


def test_corrupt_cached_mask_detected(relations):
    _, s = relations
    idx = prepare_index(s, "ptsj")
    idx.trie.root.mask ^= 1
    with pytest.raises(SanitizerError, match="mask") as exc:
        sanitizer.check_patricia_trie(idx.trie)
    assert exc.value.path == "root"


def test_single_child_internal_node_detected(relations):
    _, s = relations
    idx = prepare_index(s, "ptsj")
    node = idx.trie.root
    assert not node.is_leaf, "fixture relation must split the root"
    node.right = None
    with pytest.raises(SanitizerError, match="single child"):
        sanitizer.check_patricia_trie(idx.trie)


def test_prepared_index_accounting_detects_lost_tuples(relations):
    _, s = relations
    idx = prepare_index(s, "ptsj")
    leaf, _ = _first_leaf(idx.trie)
    leaf.items.pop()
    with pytest.raises(SanitizerError, match="tuple ids"):
        sanitizer.check_prepared_index(idx)


# ----------------------------------------------------------------------
# Element-space tries and the binary trie
# ----------------------------------------------------------------------
def test_binary_trie_corruption_detected(relations):
    _, s = relations
    idx = prepare_index(s, "tsj")
    sanitizer.check_binary_trie(idx.trie)
    idx.trie.leaf_count += 1
    with pytest.raises(SanitizerError, match="leaf_count"):
        sanitizer.check_binary_trie(idx.trie)


def test_set_trie_corruption_detected(relations):
    _, s = relations
    idx = prepare_index(s, "pretti")
    sanitizer.check_set_trie(idx.trie)
    idx.trie.size += 1
    with pytest.raises(SanitizerError, match="size"):
        sanitizer.check_set_trie(idx.trie)


def test_set_trie_mislabeled_child_detected(relations):
    _, s = relations
    idx = prepare_index(s, "pretti")
    label, child = next(iter(idx.trie.root.children.items()))
    child.label = label + 1
    with pytest.raises(SanitizerError, match="keyed"):
        sanitizer.check_set_trie(idx.trie)


def test_set_patricia_trie_corruption_detected(relations):
    _, s = relations
    idx = prepare_index(s, "pretti+")
    sanitizer.check_set_patricia_trie(idx.trie)
    _, child = next(iter(idx.trie.root.children.items()))
    child.prefix = ()
    with pytest.raises(SanitizerError, match="prefix"):
        sanitizer.check_set_patricia_trie(idx.trie)


# ----------------------------------------------------------------------
# Inverted index
# ----------------------------------------------------------------------
def test_inverted_index_checks(relations):
    _, s = relations
    inv = InvertedIndex(s)
    sanitizer.check_inverted_index(inv)
    inv.lists[next(iter(inv.lists))].append(10**9)
    with pytest.raises(SanitizerError, match="unknown tuple id"):
        sanitizer.check_inverted_index(inv)


def test_inverted_index_unsorted_ids(relations):
    _, s = relations
    inv = InvertedIndex(s)
    inv.all_ids.reverse()
    with pytest.raises(SanitizerError, match="ascending"):
        sanitizer.check_inverted_index(inv)


def test_inverted_index_hook_fires_on_construction(sanitize_on, relations):
    _, s = relations
    InvertedIndex(s)  # must not raise on a fresh build


# ----------------------------------------------------------------------
# Probe accounting
# ----------------------------------------------------------------------
def test_probe_accounting_monotone(sanitize_on, relations):
    r, s = relations
    idx = prepare_index(s, "ptsj")
    idx.probe_many(r)
    idx.probe_many(r)
    idx._probe_calls -= 2
    with pytest.raises(SanitizerError, match="probe_calls"):
        idx.probe_many(r)


def test_probe_accounting_clean_over_many_batches(sanitize_on, relations):
    r, s = relations
    idx = prepare_index(s, "ptsj")
    baseline = sorted(idx.probe_many(r).pairs)
    for _ in range(3):
        assert sorted(idx.probe_many(r).pairs) == baseline


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
def test_real_plan_passes(relations):
    r, s = relations
    sanitizer.check_plan(plan(r, s))


def test_non_dataclass_plan_rejected():
    class FakePlan:
        algorithm_kwargs = ()
        executor_options = ()
        decisions = ()

    with pytest.raises(SanitizerError, match="frozen"):
        sanitizer.check_plan(FakePlan())


def test_mutable_plan_field_rejected():
    @dataclass(frozen=True)
    class LeakyPlan:
        algorithm_kwargs: tuple = ()
        executor_options: tuple = ()
        decisions: list = field(default_factory=list)

    with pytest.raises(SanitizerError, match="decisions"):
        sanitizer.check_plan(LeakyPlan())


# ----------------------------------------------------------------------
# Tracer balance
# ----------------------------------------------------------------------
def test_unbalanced_tracer_detected(sanitize_on):
    tracer = Tracer()
    handle = tracer.span("build")
    handle.__enter__()
    with pytest.raises(SanitizerError) as exc:
        tracer.finish()
    assert exc.value.path == "build"


def test_unbalanced_tracer_tolerated_when_off(sanitize_off):
    tracer = Tracer()
    handle = tracer.span("probe")
    handle.__enter__()
    tracer.finish()  # legacy behaviour: no check without the env var


# ----------------------------------------------------------------------
# Whole-registry smoke under sanitize mode
# ----------------------------------------------------------------------
def test_every_algorithm_joins_clean_under_sanitize(sanitize_on, relations):
    r, s = relations
    expected = None
    for name in available_algorithms():
        idx = prepare_index(s, name)
        pairs = sorted(idx.probe_many(r).pairs)
        if expected is None:
            expected = pairs
        assert pairs == expected, name
