"""Unit tests for the element-space prefix tree (PRETTI's index)."""

from __future__ import annotations

import pytest

from repro.errors import TrieError
from repro.tries.set_trie import SetTrie


class TestInsert:
    def test_single_set(self):
        trie = SetTrie()
        trie.insert((1, 3, 5), rid=7)
        assert len(trie) == 1
        assert trie.node_count() == 4  # root + 3 elements

    def test_shared_prefix_shares_nodes(self):
        """Fig. 1: {b,d}, {b,f,g} share the 'b' node."""
        trie = SetTrie()
        trie.insert((1, 3), rid=0)        # p1 = {b, d}
        trie.insert((1, 5, 6), rid=1)     # p2 = {b, f, g}
        trie.insert((0, 2, 7), rid=2)     # p3 = {a, c, h}
        # root + b + d + f + g + a + c + h = 8
        assert trie.node_count() == 8

    def test_empty_set_lives_at_root(self):
        trie = SetTrie()
        trie.insert((), rid=5)
        assert trie.root.tuples == [5]
        assert len(trie) == 1

    def test_duplicate_sets_share_node(self):
        trie = SetTrie()
        trie.insert((1, 2), rid=0)
        trie.insert((1, 2), rid=1)
        assert len(trie) == 2
        node = trie.root.children[1].children[2]
        assert node.tuples == [0, 1]

    def test_non_ascending_rejected(self):
        trie = SetTrie()
        with pytest.raises(TrieError):
            trie.insert((3, 1), rid=0)

    def test_repeated_element_rejected(self):
        with pytest.raises(TrieError):
            SetTrie().insert((1, 1), rid=0)


class TestStructure:
    def test_height_equals_max_cardinality(self):
        """Sec. II-B weak point: trie height = set cardinality."""
        trie = SetTrie()
        trie.insert(tuple(range(10)), rid=0)
        trie.insert((1, 2), rid=1)
        assert trie.height() == 10

    def test_descendant_contains_ancestor_path(self):
        trie = SetTrie()
        trie.insert((1, 2, 3), rid=0)
        trie.insert((1, 2), rid=1)
        for node, path in trie.walk():
            if node.tuples:
                assert set(path) <= {1, 2, 3}

    def test_walk_paths_reconstruct_sets(self):
        sets = [(1, 4, 9), (1, 4), (2, 3), ()]
        trie = SetTrie()
        for i, s in enumerate(sets):
            trie.insert(s, rid=i)
        recovered = {path for node, path in trie.walk() if node.tuples}
        assert recovered == set(sets)

    def test_check_invariants_on_valid_trie(self):
        trie = SetTrie()
        for i, s in enumerate([(1, 2), (1, 3, 5), (4,), ()]):
            trie.insert(s, rid=i)
        trie.check_invariants()

    def test_check_invariants_detects_corruption(self):
        trie = SetTrie()
        trie.insert((1, 2), rid=0)
        # Corrupt: move the child under a wrong key.
        child = trie.root.children.pop(1)
        trie.root.children[9] = child
        with pytest.raises(TrieError):
            trie.check_invariants()
