"""Unit tests for the nested-loop oracle itself (kept trivially simple)."""

from __future__ import annotations

from repro.baselines.nested_loop import NestedLoopJoin, nested_loop_join_pairs
from repro.relations.relation import Relation
from tests.conftest import TABLE1_EXPECTED


class TestNestedLoop:
    def test_table1_example(self, table1_profiles, table1_preferences):
        result = NestedLoopJoin().join(table1_profiles, table1_preferences)
        assert result.pair_set() == TABLE1_EXPECTED

    def test_reflexive_pairs_in_self_join(self):
        rel = Relation.from_sets([{1}, {1, 2}])
        pairs = set(nested_loop_join_pairs(rel, rel))
        assert (0, 0) in pairs and (1, 1) in pairs
        assert (1, 0) in pairs and (0, 1) not in pairs

    def test_empty_inputs(self):
        empty = Relation([])
        some = Relation.from_sets([{1}])
        assert nested_loop_join_pairs(empty, some) == []
        assert nested_loop_join_pairs(some, empty) == []

    def test_empty_set_semantics(self):
        r = Relation.from_sets([set()])
        s = Relation.from_sets([set(), {1}])
        assert set(nested_loop_join_pairs(r, s)) == {(0, 0)}

    def test_cardinality_shortcut_does_not_change_output(self):
        r = Relation.from_sets([{1, 2}])
        s = Relation.from_sets([{1, 2, 3}])  # bigger than r: skipped early
        assert nested_loop_join_pairs(r, s) == []

    def test_stats_count_all_comparisons(self):
        r = Relation.from_sets([{1}, {2}])
        s = Relation.from_sets([{1}, {2}, {3}])
        stats = NestedLoopJoin().join(r, s).stats
        assert stats.verifications == 6
