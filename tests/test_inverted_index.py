"""Unit tests for the inverted index and sorted-list intersection."""

from __future__ import annotations

import random

import pytest

from repro.index.inverted import InvertedIndex, intersect_sorted
from repro.relations.relation import Relation, SetRecord


class TestIntersectSorted:
    def test_basic(self):
        assert intersect_sorted([1, 3, 5], [2, 3, 4, 5]) == [3, 5]

    def test_disjoint(self):
        assert intersect_sorted([1, 2], [3, 4]) == []

    def test_empty_operands(self):
        assert intersect_sorted([], [1, 2]) == []
        assert intersect_sorted([1], []) == []

    def test_identical(self):
        assert intersect_sorted([1, 2, 3], [1, 2, 3]) == [1, 2, 3]

    def test_gallop_path_very_asymmetric(self):
        small = [5, 500, 995]
        large = list(range(1000))
        assert intersect_sorted(small, large) == small
        assert intersect_sorted(large, small) == small

    def test_gallop_path_misses(self):
        small = [1000, 2000]
        large = list(range(0, 999, 2))
        assert intersect_sorted(small, large) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_set_intersection(self, seed):
        rng = random.Random(seed)
        a = sorted(rng.sample(range(300), rng.randint(0, 80)))
        b = sorted(rng.sample(range(300), rng.randint(0, 250)))
        assert intersect_sorted(a, b) == sorted(set(a) & set(b))

    def test_result_is_sorted_and_unique(self):
        a = list(range(0, 100, 3))
        b = list(range(0, 100, 5))
        out = intersect_sorted(a, b)
        assert out == sorted(set(out))


class TestInvertedIndex:
    def relation(self) -> Relation:
        return Relation.from_sets([{1, 2}, {2, 3}, {3}, set()])

    def test_postings_sorted_ascending(self):
        idx = InvertedIndex(self.relation())
        assert idx.postings(2) == [0, 1]
        assert idx.postings(3) == [1, 2]

    def test_postings_for_unknown_element(self):
        idx = InvertedIndex(self.relation())
        assert idx.postings(99) == []

    def test_all_ids_includes_empty_set_tuples(self):
        idx = InvertedIndex(self.relation())
        assert idx.all_ids == [0, 1, 2, 3]

    def test_len_counts_elements(self):
        assert len(InvertedIndex(self.relation())) == 3

    def test_contains(self):
        idx = InvertedIndex(self.relation())
        assert 1 in idx and 99 not in idx

    def test_refine_intersects(self):
        idx = InvertedIndex(self.relation())
        assert idx.refine([0, 1, 2, 3], 2) == [0, 1]
        assert idx.refine([0, 1], 3) == [1]

    def test_refine_unknown_element_empties(self):
        idx = InvertedIndex(self.relation())
        assert idx.refine([0, 1], 42) == []

    def test_refine_counts_intersections(self):
        idx = InvertedIndex(self.relation())
        idx.refine([0], 1)
        idx.refine([0], 2)
        assert idx.intersection_count == 2

    def test_refine_many_short_circuits(self):
        idx = InvertedIndex(self.relation())
        before = idx.intersection_count
        out = idx.refine_many([0, 1, 2, 3], [42, 1, 2, 3])
        assert out == []
        # refine(42) empties the list; remaining elements are not probed.
        assert idx.intersection_count == before + 1

    def test_refine_many_full_chain(self):
        idx = InvertedIndex(self.relation())
        assert idx.refine_many([0, 1, 2, 3], [2, 3]) == [1]

    def test_unsorted_record_ids_are_sorted(self):
        rel = Relation([SetRecord(9, frozenset({1})), SetRecord(2, frozenset({1}))])
        idx = InvertedIndex(rel)
        assert idx.postings(1) == [2, 9]
        assert idx.all_ids == [2, 9]

    def test_average_list_length(self):
        idx = InvertedIndex(self.relation())
        # postings: 1->[0], 2->[0,1], 3->[1,2]; average (1+2+2)/3.
        assert idx.average_list_length() == pytest.approx(5 / 3)

    def test_average_list_length_empty_relation(self):
        assert InvertedIndex(Relation([])).average_list_length() == 0.0

    def test_larger_domain_means_shorter_lists(self):
        """The Fig. 6b effect: same data volume over more elements."""
        rng = random.Random(60)
        narrow = Relation.from_sets(
            [frozenset(rng.sample(range(50), 10)) for _ in range(200)]
        )
        wide = Relation.from_sets(
            [frozenset(rng.sample(range(5000), 10)) for _ in range(200)]
        )
        assert InvertedIndex(wide).average_list_length() < InvertedIndex(narrow).average_list_length()
