"""Tests for the runtime race detector and the interleaving harness.

Covers the two PR-10 runtime pieces end to end:

* :mod:`repro.analysis.concurrency` — the ``tracked_lock`` factory's
  no-op fast path, re-entry detection, the process-wide lock-order graph
  (two-lock and transitive cycles, stack naming, graph hygiene after a
  raise), hold-time histograms, and the acceptance-criterion scenario: a
  seeded cache-lock-then-metrics-lock inversion against the opposite
  order, detected with both acquisition stacks named.
* :mod:`repro.testing.schedules` — the scripted rendezvous (ordering,
  pass-through, timeout, worker-failure propagation) and the three
  scripted interleavings the issue names: IndexCache singleflight (the
  late-inserter leak regression), admission-control inflight accounting,
  and kernel-registry initialization.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.concurrency import (
    TrackedLock,
    enabled,
    held_lock_names,
    lock_order_edges,
    reset_lock_order,
    tracked_lock,
)
from repro.errors import LockOrderError
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import IndexCache
from repro.serve.server import JoinServer
from repro.testing.schedules import Schedule, ScheduleError

from tests.conftest import oracle_pairs, random_relation


@pytest.fixture
def racedetect(monkeypatch):
    """Arm the detector and isolate the process-wide order graph."""
    monkeypatch.setenv("REPRO_RACEDETECT", "1")
    reset_lock_order()
    yield
    reset_lock_order()


# ----------------------------------------------------------------------
# The factory: no-op fast path vs. tracked flavour
# ----------------------------------------------------------------------
def test_factory_returns_plain_stdlib_locks_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_RACEDETECT", raising=False)
    assert not enabled()
    lock = tracked_lock("x")
    assert not isinstance(lock, TrackedLock)
    assert type(lock) is type(threading.Lock())
    rlock = tracked_lock("x", reentrant=True)
    assert not isinstance(rlock, TrackedLock)
    with rlock:
        with rlock:  # genuinely reentrant stdlib RLock
            pass


def test_factory_returns_tracked_locks_when_enabled(racedetect):
    assert enabled()
    lock = tracked_lock("x")
    assert isinstance(lock, TrackedLock)
    assert not lock.locked()
    with lock:
        assert lock.locked()
        assert held_lock_names() == ("x",)
    assert held_lock_names() == ()


@pytest.mark.parametrize("value", ["0", "false", "no", "off", ""])
def test_falsy_env_values_disable_the_detector(monkeypatch, value):
    monkeypatch.setenv("REPRO_RACEDETECT", value)
    assert not enabled()


# ----------------------------------------------------------------------
# Re-entry
# ----------------------------------------------------------------------
def test_same_thread_reentry_raises_instead_of_deadlocking(racedetect):
    lock = tracked_lock("cache.lock")
    with lock:
        with pytest.raises(LockOrderError) as excinfo:
            lock.acquire()
    message = str(excinfo.value)
    assert "re-entrant" in message
    assert "cache.lock" in message
    assert "test_same_thread_reentry" in message, "stack must name the caller"
    # The failed acquisition must not have corrupted the held stack.
    assert held_lock_names() == ()


def test_reentrant_tracked_lock_allows_nesting(racedetect):
    lock = tracked_lock("tree.lock", reentrant=True)
    assert isinstance(lock, TrackedLock)
    with lock:
        with lock:
            assert lock.locked()
    assert not lock.locked()


# ----------------------------------------------------------------------
# The lock-order graph
# ----------------------------------------------------------------------
def _take_in_order(first, second):
    with first:
        with second:
            pass


def test_two_lock_inversion_raises_with_both_stacks(racedetect):
    a = tracked_lock("a")
    b = tracked_lock("b")
    _take_in_order(a, b)
    with pytest.raises(LockOrderError) as excinfo:
        _take_in_order(b, a)
    message = str(excinfo.value)
    assert "'a'" in message and "'b'" in message
    # Both acquisition stacks: the inverted one raising now and the one
    # that established a -> b earlier.
    assert message.count("_take_in_order") >= 2
    assert "this acquisition" in message
    assert "prior acquisition" in message


def test_transitive_cycle_is_detected(racedetect):
    a, b, c = tracked_lock("a"), tracked_lock("b"), tracked_lock("c")
    _take_in_order(a, b)
    _take_in_order(b, c)
    with pytest.raises(LockOrderError) as excinfo:
        _take_in_order(c, a)
    assert "a -> b -> c" in str(excinfo.value)


def test_consistent_order_never_raises_and_graph_records_edges(racedetect):
    a, b = tracked_lock("a"), tracked_lock("b")
    for _ in range(3):
        _take_in_order(a, b)
    assert lock_order_edges() == {"a": ("b",)}


def test_detected_inversion_does_not_pollute_the_graph(racedetect):
    a, b = tracked_lock("a"), tracked_lock("b")
    _take_in_order(a, b)
    with pytest.raises(LockOrderError):
        _take_in_order(b, a)
    # The offending edge was not inserted: the sanctioned order still
    # works, and the lock released cleanly despite the raise.
    _take_in_order(a, b)
    assert lock_order_edges() == {"a": ("b",)}


def test_same_name_locks_share_one_graph_node(racedetect):
    # Every per-key cache.build lock is one node: an inversion between
    # *any* build lock and the registry is caught across instances.
    build1 = tracked_lock("cache.build")
    build2 = tracked_lock("cache.build")
    registry_lock = tracked_lock("metrics.registry")
    _take_in_order(build1, registry_lock)
    with pytest.raises(LockOrderError):
        _take_in_order(registry_lock, build2)


def test_hold_time_histogram_is_stamped(racedetect):
    registry = MetricsRegistry()
    lock = tracked_lock("server.inflight", registry=registry)
    with lock:
        pass
    with lock:
        pass
    snapshot = registry.snapshot()
    assert snapshot["lock.server.inflight.hold_seconds.count"] == 2.0
    assert snapshot["lock.server.inflight.hold_seconds.sum"] >= 0.0


def test_nonblocking_acquire_still_works(racedetect):
    lock = tracked_lock("x")
    assert lock.acquire(blocking=False)
    try:
        holder: list[bool] = []
        thread = threading.Thread(
            target=lambda: holder.append(lock.acquire(blocking=False))
        )
        thread.start()
        thread.join(timeout=10)
        assert holder == [False]
    finally:
        lock.release()


# ----------------------------------------------------------------------
# Acceptance criterion: seeded cache-lock vs. metrics-lock inversion
# ----------------------------------------------------------------------
def _seed_cache_then_metrics(cache, registry):
    # Test-only fixture: the sanctioned order (docs/ANALYSIS.md) —
    # cache internals may create instruments, never the reverse.
    with cache._lock:
        with registry._lock:
            pass


def _invert_metrics_then_cache(cache, registry):
    with registry._lock:
        with cache._lock:
            pass


def test_seeded_cache_metrics_inversion_names_both_stacks(racedetect):
    registry = MetricsRegistry()
    cache = IndexCache(4, registry=registry)
    assert isinstance(cache._lock, TrackedLock)
    assert isinstance(registry._lock, TrackedLock)
    _seed_cache_then_metrics(cache, registry)
    with pytest.raises(LockOrderError) as excinfo:
        _invert_metrics_then_cache(cache, registry)
    message = str(excinfo.value)
    assert "cache.lock" in message
    assert "metrics.registry" in message
    assert "_invert_metrics_then_cache" in message, "raising stack missing"
    assert "_seed_cache_then_metrics" in message, "prior stack missing"


def test_real_cache_traffic_is_clean_under_the_detector(racedetect):
    """A built-probed-evicted cache establishes only the sanctioned order."""
    registry = MetricsRegistry()
    cache = IndexCache(2, ttl_seconds=10.0, registry=registry)
    for key in ("a", "b", "c"):
        value, hit = cache.get_or_build(key, lambda: key.upper())
        assert not hit
    cache.get("a")
    cache.evict_expired()
    cache.clear()
    edges = lock_order_edges()
    assert "metrics.registry" not in edges, (
        "nothing may acquire under the registry lock"
    )


# ----------------------------------------------------------------------
# The Schedule harness
# ----------------------------------------------------------------------
def test_schedule_enforces_the_scripted_order():
    # Each write is bracketed by a begin/end step pair, so the script
    # serializes the writes themselves — same trace on every run.
    script = [
        ("a", "w1"), ("a", "d1"),
        ("b", "w2"), ("b", "d2"),
        ("a", "w3"), ("a", "d3"),
    ]
    for _ in range(5):  # deterministic: same order every run
        sched = Schedule(script, timeout_seconds=30)
        trace: list[str] = []

        def actor(name, writes):
            def run():
                for step, value in writes:
                    sched.point(name, f"w{step}")
                    trace.append(value)
                    sched.point(name, f"d{step}")

            return run

        sched.run(
            {
                "a": actor("a", [(1, "a1"), (3, "a3")]),
                "b": actor("b", [(2, "b2")]),
            }
        )
        assert trace == ["a1", "b2", "a3"]
        assert sched.remaining == ()


def test_unscripted_points_pass_through():
    sched = Schedule([("a", "only")], timeout_seconds=30)
    sched.point("b", "never-scripted")  # returns immediately
    sched.point("a", "only")
    assert sched.remaining == ()
    sched.point("a", "only")  # script exhausted: free-run


def test_schedule_timeout_raises_instead_of_hanging():
    sched = Schedule([("ghost", "never"), ("a", "later")], timeout_seconds=0.2)
    with pytest.raises(ScheduleError, match="timed out"):
        sched.point("a", "later")


def test_worker_exception_fails_the_schedule_and_unblocks_peers():
    sched = Schedule([("a", "go"), ("b", "after")], timeout_seconds=30)

    def bad_actor():
        raise ValueError("worker exploded")

    def blocked_actor():
        sched.point("b", "after")  # would wait on ("a", "go") forever

    with pytest.raises(ValueError, match="worker exploded"):
        sched.run({"a": bad_actor, "b": blocked_actor})


def test_unconsumed_script_is_an_error():
    sched = Schedule([("a", "never-reached")], timeout_seconds=30)
    with pytest.raises(ScheduleError, match="not fully consumed"):
        sched.run({"b": lambda: None})


# ----------------------------------------------------------------------
# Scripted interleaving: IndexCache singleflight
# ----------------------------------------------------------------------
class _SlotScheduledCache(IndexCache):
    """Cache whose slot lookup parks on a schedule point — pins a thread
    in the window between its miss and its singleflight-slot lookup."""

    def __init__(self, sched: Schedule, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._sched = sched

    def _build_slot(self, key: str):
        actor = threading.current_thread().name.removeprefix("schedule-")
        # "miss" marks that the caller is past its cache miss; "slot" is
        # where a script can park it before the singleflight-map lookup.
        self._sched.point(actor, "miss")
        self._sched.point(actor, "slot")
        return super()._build_slot(key)


def test_singleflight_late_inserter_cleans_up_its_slot(racedetect):
    """The historical `_building` leak, deterministically.

    The late thread misses, then stalls before looking up the build
    slot; the winner builds, publishes and removes its slot entirely.
    The late thread then inserts a *fresh* slot lock, double-checks into
    a hit — and must remove its own insertion on the way out, or the
    map leaks one lock per occurrence forever.
    """
    sched = Schedule(
        [
            ("late", "miss"),  # late is past its cache miss, parked
            ("winner", "slot"),  # winner builds + publishes + cleans up
            ("winner", "built"),
            ("late", "slot"),  # late resumes into an empty build map
        ],
        timeout_seconds=30,
    )
    registry = MetricsRegistry()
    cache = _SlotScheduledCache(sched, 4, registry=registry)
    builds: list[str] = []

    def builder():
        builds.append(threading.current_thread().name)
        return "value"

    def winner():
        result = cache.get_or_build("k", builder)
        sched.point("winner", "built")
        return result

    def late():
        return cache.get_or_build("k", builder)

    results = sched.run({"winner": winner, "late": late})
    assert results["winner"] == ("value", False)
    assert results["late"] == ("value", True), "late thread must hit"
    assert builds == ["schedule-winner"], "exactly one build"
    assert cache.pending_builds() == (), "late inserter leaked its slot"


def test_coalesced_waiters_leave_no_slot_behind():
    sched = Schedule([], timeout_seconds=30)
    cache = _SlotScheduledCache(sched, 4)
    barrier = threading.Barrier(4)
    builds: list[int] = []

    def worker():
        barrier.wait(timeout=30)
        value, _hit = cache.get_or_build("k", lambda: builds.append(1) or "v")
        return value

    results = sched.run({f"w{i}": worker for i in range(4)})
    assert set(results.values()) == {"v"}
    assert len(builds) == 1
    assert cache.pending_builds() == ()


# ----------------------------------------------------------------------
# Scripted interleaving: admission-control inflight accounting
# ----------------------------------------------------------------------
def test_admission_inflight_accounting_interleaved(racedetect):
    """Two admissions interleaved with observer reads: the counter and
    gauge step 0 → 1 → 2 → 0 with no torn states visible."""
    # The hook fires *after* admission, so the script gates the second
    # SEND (not just its hook) behind the observer's first read — the
    # hook then pins each admitted request until the observer has seen
    # the count it produced.
    sched = Schedule(
        [
            ("req0", "admitted"),
            ("main", "saw-one"),  # exactly req0 in flight here
            ("req1", "send"),
            ("req1", "admitted"),
            ("main", "saw-two"),  # both pinned in their hooks here
            ("req0", "hold"),
            ("req1", "hold"),
        ],
        timeout_seconds=30,
    )
    admitted: list = []
    admitted_lock = threading.Lock()

    def hook(frame):
        with admitted_lock:
            index = len(admitted)
            admitted.append(frame.get("id"))
        sched.point(f"req{index}", "admitted")
        sched.point(f"req{index}", "hold")

    srv = JoinServer(max_connections=4, max_inflight=2, request_hook=hook)
    srv.start()
    try:
        r = random_relation(10, 4, 20, seed=31)
        s = random_relation(10, 3, 20, seed=32, min_cardinality=1)
        expected = sorted(oracle_pairs(r, s))

        def request_worker(actor):
            from repro.serve import JoinClient

            def run():
                sched.point(actor, "send")  # pass-through for req0
                with JoinClient(address=srv.address) as client:
                    return JoinClient.pairs(client.probe(r, s))

            return run

        def observer():
            sched.point("main", "saw-one")
            first = srv.inflight
            gauge_first = srv.registry.snapshot()["server.inflight"]
            sched.point("main", "saw-two")
            second = srv.inflight
            gauge_second = srv.registry.snapshot()["server.inflight"]
            return (first, gauge_first, second, gauge_second)

        results = sched.run(
            {
                "req0": request_worker("req0"),
                "req1": request_worker("req1"),
                "main": observer,
            }
        )
        assert results["req0"] == expected
        assert results["req1"] == expected
        assert results["main"] == (1, 1.0, 2, 2.0)
        assert srv.inflight == 0
        assert srv.registry.snapshot()["server.inflight"] == 0.0
    finally:
        srv.request_hook = None
        srv.stop()


# ----------------------------------------------------------------------
# Scripted interleaving: kernel-registry initialization
# ----------------------------------------------------------------------
def test_kernel_registry_concurrent_first_use_constructs_once(racedetect):
    from repro import kernels
    from repro.kernels.python_backend import PythonKernel

    constructions: list[str] = []

    def factory():
        constructions.append(threading.current_thread().name)
        return PythonKernel()

    kernels.register_backend("race-probe", factory)
    try:
        sched = Schedule([("a", "start"), ("b", "start")], timeout_seconds=30)
        barrier = threading.Barrier(2)

        def resolver(actor):
            def run():
                sched.point(actor, "start")
                barrier.wait(timeout=30)
                return kernels.get_backend("race-probe")

            return run

        results = sched.run({"a": resolver("a"), "b": resolver("b")})
        assert results["a"] is results["b"], "both threads share one instance"
        assert len(constructions) == 1, "registry lock must dedupe construction"
    finally:
        # De-register the probe so later kernel tests see a pristine table.
        with kernels._lock:
            kernels._factories.pop("race-probe", None)
            kernels._instances.pop("race-probe", None)
