"""Differential test harness: every algorithm against the brute-force oracle.

Hypothesis drives random relations (including empty sets, duplicate
sets, empty relations) through every registry algorithm via *both* entry
points — the one-shot ``join()`` and the prepared-index
``prepare() + probe_many()`` path — and checks the pair sets against the
obvious nested-loop oracle.  Stats invariants ride along: signature
algorithms verify exactly their candidates, PRETTI-family algorithms
never verify, and tracing must not perturb any output.

Seeds are pinned (``derandomize=True`` plus explicit ``@seed``) so CI
failures reproduce locally byte-for-byte.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.core.registry import (
    available_algorithms,
    execute_plan,
    make_algorithm,
    plan,
    set_containment_join,
)
from repro.exec import ParallelJoin, ResilientParallelJoin, RetryPolicy
from repro.kernels import available_backends, use_backend
from repro.obs import Tracer, use
from repro.planner import Workload
from repro.relations.relation import Relation, SetRecord

ALL_ALGORITHMS = available_algorithms()

#: Every kernel backend constructible on this host ("python" at minimum,
#: plus "numpy" wherever it imports).  The oracle tests run once per
#: backend: the parity contract (docs/KERNELS.md) says backends are
#: bit-for-bit interchangeable, so the same seeds must produce the same
#: pairs and the same counters under each.
KERNEL_BACKENDS = available_backends()

#: Pinned multiprocessing start method for the parallel differential test
#: (CI runs the suite once per method; ``None`` = platform default).
START_METHOD = os.environ.get("REPRO_START_METHOD") or None

DIFFERENTIAL_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    # function_scoped_fixture: the kernel_backend fixture pins one
    # backend for *all* examples of a test, so not resetting it between
    # examples is exactly the intended behaviour.
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

#: Small universes keep the oracle trivial while still hitting subset
#: structure, duplicate sets, empty sets and empty relations.
set_strategy = st.frozensets(st.integers(min_value=0, max_value=30), max_size=8)
relation_strategy = st.lists(set_strategy, max_size=12)


@pytest.fixture(params=KERNEL_BACKENDS)
def kernel_backend(request):
    """Run the decorated test once under each available kernel backend."""
    with use_backend(request.param):
        yield request.param


def build_relation(sets: list[frozenset[int]], start_id: int = 0) -> Relation:
    return Relation(
        [SetRecord(start_id + i, elements) for i, elements in enumerate(sets)]
    )


def oracle(r: Relation, s: Relation) -> set[tuple[int, int]]:
    return {
        (rr.rid, ss.rid)
        for rr in r
        for ss in s
        if rr.elements >= ss.elements
    }


def assert_stats_invariants(name: str, stats, pairs) -> None:
    """Cross-algorithm stats invariants the harness locks in."""
    assert stats.pairs == len(pairs)
    assert stats.build_seconds >= 0 and stats.probe_seconds >= 0
    if name in ("ptsj", "tsj", "shj", "mwtsj"):
        # Algorithm 1 verifies exactly the candidates its filter admits.
        # (candidates can be *fewer* than pairs: identical S-sets merge
        # into one candidate group, Sec. III-E1.)
        assert stats.verifications == stats.candidates
    if name in ("pretti", "pretti+"):
        # List intersection produces exact results: nothing to verify.
        assert stats.verifications == 0


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
@given(r_sets=relation_strategy, s_sets=relation_strategy)
@seed(20150413)  # ICDE 2015 — pinned so failures replay identically
@DIFFERENTIAL_SETTINGS
def test_join_matches_oracle(name, kernel_backend, r_sets, s_sets):
    r = build_relation(r_sets)
    s = build_relation(s_sets, start_id=100)
    result = make_algorithm(name).join(r, s)
    assert set(result.pairs) == oracle(r, s)
    assert_stats_invariants(name, result.stats, result.pairs)
    assert result.stats.extras.get("kernel_backend") == kernel_backend


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
@given(r_sets=relation_strategy, s_sets=relation_strategy)
@seed(20150413)
@DIFFERENTIAL_SETTINGS
def test_prepared_probe_matches_oracle(name, kernel_backend, r_sets, s_sets):
    r = build_relation(r_sets)
    s = build_relation(s_sets, start_id=100)
    index = make_algorithm(name).prepare(s, probe_hint=r)
    result = index.probe_many(r)
    assert set(result.pairs) == oracle(r, s)
    assert_stats_invariants(name, result.stats, result.pairs)
    assert result.stats.extras.get("kernel_backend") == kernel_backend


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
@given(r_sets=relation_strategy, s_sets=relation_strategy)
@seed(20150413)
@DIFFERENTIAL_SETTINGS
def test_traced_join_matches_untraced(name, r_sets, s_sets):
    """An active tracer must never change pairs or counters."""
    r = build_relation(r_sets)
    s = build_relation(s_sets, start_id=100)
    plain = make_algorithm(name).join(r, s)
    with use(Tracer()):
        traced = make_algorithm(name).join(r, s)
    assert traced.pairs == plain.pairs
    assert traced.stats.candidates == plain.stats.candidates
    assert traced.stats.verifications == plain.stats.verifications
    assert traced.stats.node_visits == plain.stats.node_visits
    assert traced.stats.intersections == plain.stats.intersections


@given(r_sets=relation_strategy, s_sets=relation_strategy)
@seed(20150413)
@DIFFERENTIAL_SETTINGS
def test_parallel_inline_matches_oracle(r_sets, s_sets):
    """workers=1 exercise of the chunked executor (no pool overhead)."""
    r = build_relation(r_sets)
    s = build_relation(s_sets, start_id=100)
    executor = ParallelJoin(algorithm="ptsj", workers=1, chunks=3)
    assert set(executor.join(r, s).pairs) == oracle(r, s)


def test_parallel_pooled_matches_oracle():
    """One real multi-process run per configured start method.

    Not hypothesis-driven: pool startup is too slow per example.  The
    dataset is fixed and large enough for several non-trivial chunks.
    """
    from .conftest import random_relation

    r = random_relation(60, 9, 40, seed=31)
    s = random_relation(60, 6, 40, seed=32)
    executor = ParallelJoin(
        algorithm="ptsj", workers=2, chunks=4, start_method=START_METHOD
    )
    assert set(executor.join(r, s).pairs) == oracle(r, s)


def test_resilient_pooled_matches_oracle():
    from .conftest import random_relation

    r = random_relation(60, 9, 40, seed=33)
    s = random_relation(60, 6, 40, seed=34)
    executor = ResilientParallelJoin(
        algorithm="ptsj",
        workers=2,
        chunks=4,
        start_method=START_METHOD,
        retry_policy=RetryPolicy(max_attempts=2),
    )
    result = executor.join(r, s)
    assert set(result.pairs) == oracle(r, s)
    assert not result.stats.extras.get("fallback_chunks")


@given(r_sets=relation_strategy, s_sets=relation_strategy)
@seed(20150413)
@DIFFERENTIAL_SETTINGS
def test_auto_planned_join_matches_oracle(r_sets, s_sets):
    """``join(r, s)`` with no algorithm routes through the planner."""
    r = build_relation(r_sets)
    s = build_relation(s_sets, start_id=100)
    result = set_containment_join(r, s)
    assert set(result.pairs) == oracle(r, s)
    # The same plan, taken explicitly, reproduces the same pairs.
    query_plan = plan(r, s)
    assert not query_plan.pinned
    assert set(execute_plan(query_plan, r, s).pairs) == oracle(r, s)


@given(r_sets=relation_strategy, s_sets=relation_strategy)
@seed(20150413)
@DIFFERENTIAL_SETTINGS
def test_budgeted_plan_matches_oracle(r_sets, s_sets):
    """A tight memory budget routes through the disk executor; same pairs."""
    r = build_relation(r_sets)
    s = build_relation(s_sets, start_id=100)
    query_plan = plan(r, s, workload=Workload(memory_budget_tuples=4))
    if len(r) + len(s) > 4:
        assert query_plan.executor == "disk"
    assert set(execute_plan(query_plan, r, s).pairs) == oracle(r, s)


def test_parallel_plan_matches_oracle():
    """A workers hint routes through the pool; one real run per method."""
    from .conftest import random_relation

    r = random_relation(60, 9, 40, seed=35)
    s = random_relation(60, 6, 40, seed=36)
    for workload, executor in (
        (Workload(workers=2), "parallel"),
        (Workload(workers=2, fault_tolerance=True), "resilient"),
    ):
        query_plan = plan(r, s, algorithm="ptsj", workload=workload)
        assert query_plan.executor == executor
        assert set(execute_plan(query_plan, r, s).pairs) == oracle(r, s)


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
def test_backend_counter_parity(name):
    """Every backend reproduces the python backend's JoinStats exactly.

    This is the parity contract of docs/KERNELS.md made executable:
    pairs, every scalar counter and every extra (minus the
    ``kernel_backend`` marker itself) must be bit-for-bit identical no
    matter which backend ran the batch filters.
    """
    from .conftest import random_relation

    r = random_relation(50, 8, 60, seed=91)
    s = random_relation(50, 5, 60, seed=92)

    def fingerprint(backend: str):
        with use_backend(backend):
            result = make_algorithm(name).join(r, s)
        extras = {
            k: v for k, v in result.stats.extras.items() if k != "kernel_backend"
        }
        assert result.stats.extras.get("kernel_backend") == backend
        return (
            result.pairs,
            result.stats.pairs,
            result.stats.candidates,
            result.stats.verifications,
            result.stats.node_visits,
            result.stats.intersections,
            result.stats.index_nodes,
            result.stats.signature_bits,
            extras,
        )

    reference = fingerprint("python")
    for backend in KERNEL_BACKENDS:
        if backend == "python":
            continue
        assert fingerprint(backend) == reference, (
            f"{name}: backend {backend!r} drifted from the python backend"
        )


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
def test_edge_relations(name, kernel_backend):
    """Deterministic spot checks hypothesis shrinks toward anyway."""
    empty = build_relation([])
    single_empty = build_relation([frozenset()])
    dupes = build_relation(
        [frozenset({1, 2}), frozenset({1, 2}), frozenset({1, 2, 3})],
        start_id=100,
    )
    algorithm = make_algorithm(name)
    assert algorithm.join(empty, dupes).pairs == []
    assert set(make_algorithm(name).join(dupes_r := build_relation(
        [frozenset({1, 2, 3}), frozenset()]), dupes).pairs) == oracle(dupes_r, dupes)
    # An empty probe set contains only the empty indexed set.
    result = make_algorithm(name).join(single_empty, dupes)
    assert result.pairs == []
    both_empty_sets = make_algorithm(name).join(
        single_empty, build_relation([frozenset()], start_id=500)
    )
    assert set(both_empty_sets.pairs) == {(0, 500)}
