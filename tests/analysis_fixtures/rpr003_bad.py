"""RPR003 fixture (bad): mutating frozen planner value objects."""


def retarget(plan, decision):
    plan.algorithm = "shj"
    decision.reason = "overridden"
    object.__setattr__(plan, "executor", "disk")
    return plan


def bump(cost_estimate, fallback_plan):
    cost_estimate.total += 1.0
    fallback_plan.executor = "serial"
