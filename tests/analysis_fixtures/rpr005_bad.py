"""RPR005 fixture (bad): bare except clause."""


def load(path):
    try:
        return open(path).read()
    except:
        return None
