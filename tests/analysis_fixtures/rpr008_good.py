"""RPR008 fixture (good): the fault is counted before being tolerated."""


def drop_cache(index, stats):
    try:
        index.invalidate()
    except ValueError:
        stats.extras["invalidate_failures"] = (
            stats.extras.get("invalidate_failures", 0) + 1
        )
