"""RPR011 fixture (bad): lock-guarded attributes mutated without the lock."""

import threading


class BatchCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._calls = 0
        self._records = []

    def record_batch(self, rids):
        with self._lock:
            self._calls += 1
            self._records.extend(rids)

    def record_raw(self, rid):
        # Same attributes as record_batch, no lock: a lost-update race.
        self._calls += 1
        self._records.append(rid)


class ResidencyMap:
    def __init__(self):
        self._table_lock = threading.Lock()
        self._entries = {}

    def insert(self, key, value):
        with self._table_lock:
            self._entries[key] = value

    def drop(self, key):
        del self._entries[key]
