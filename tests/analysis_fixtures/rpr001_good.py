"""RPR001 fixture (good): the one clock, plus time.sleep (not a read)."""
import time

from repro.obs.clock import perf_counter


def measure_probe():
    start = perf_counter()
    time.sleep(0)
    return perf_counter() - start
