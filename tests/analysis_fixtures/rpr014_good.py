"""RPR014 fixture (good): one module-level local behind accessor functions."""

import threading

_AMBIENT = threading.local()


def current_user():
    return getattr(_AMBIENT, "user", None)


def set_user(user):
    _AMBIENT.user = user


def with_user(user, fn):
    previous = current_user()
    set_user(user)
    try:
        return fn()
    finally:
        set_user(previous)
