"""RPR004 fixture (good): None defaults, containers built per call."""


def collect_pairs(pairs=None, seen=None):
    return list(pairs or ()), dict(seen or {})


def configure(*, options=None, tags=frozenset()):
    return dict(options or {}), tags
