"""RPR007 fixture (good): documented counters and the extras escape hatch."""


def account(stats, chunk_stats):
    stats.node_visits = 7
    chunk_stats.pairs = 1
    stats.intersections += 1
    stats.extras["retries"] = stats.extras.get("retries", 0) + 1
