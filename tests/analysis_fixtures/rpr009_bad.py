"""RPR009 fixture (bad): relation-sized loops that never poll governance."""


def build_index(s, trie, signature):
    for rec in s:
        trie.insert(signature(rec.elements))


def scan_records(relation, out):
    for rec in relation.records:
        out.append(rec.rid)


def traverse(root):
    visits = 0
    stack = [root]
    while stack:
        node = stack.pop()
        visits += 1
        stack.extend(node.children)
    return visits
