"""RPR003 fixture (good): derive new planner values instead of mutating."""
from dataclasses import replace


def retarget(plan, decision):
    new_plan = replace(plan, algorithm="shj", executor="disk")
    new_decision = replace(decision, reason="overridden")
    return new_plan, new_decision


def bump(index):
    # Attribute assignment on a non-plan name is out of scope for RPR003.
    index.generation = index.generation + 1
    return index
