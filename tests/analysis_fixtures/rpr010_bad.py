"""RPR010 fixture (bad): numpy imports outside the kernel layer."""
import numpy
import numpy.linalg as la
from numpy import uint64


def pack(signatures, bits):
    words = max(1, (bits + 63) // 64)
    matrix = numpy.zeros((len(signatures), words), dtype=uint64)
    return matrix, la
