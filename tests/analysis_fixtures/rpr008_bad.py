"""RPR008 fixture (bad): a fault silently swallowed."""


def drop_cache(index):
    try:
        index.invalidate()
    except ValueError:
        pass
