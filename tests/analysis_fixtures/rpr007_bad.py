"""RPR007 fixture (bad): ad-hoc attributes invented on JoinStats objects."""


def account(stats, chunk_stats):
    stats.nodes_visited = 7
    chunk_stats.total_pairs = 1
    stats.retries += 1
