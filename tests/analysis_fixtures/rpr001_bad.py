"""RPR001 fixture (bad): clock reads outside repro.obs."""
import time
from time import perf_counter


def measure_probe():
    start = time.perf_counter()
    wall = time.time()
    tick = perf_counter()
    return start, wall, tick
