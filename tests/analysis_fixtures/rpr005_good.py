"""RPR005 fixture (good): the narrowest plausible exception is caught."""


def load(path):
    try:
        return open(path).read()
    except OSError:
        return None
