"""RPR002 fixture (good): module-level functions cross the boundary.

Linted with ``module="repro.exec.fixture"``; mirrors how the sharded
executor ships ``_join_shard`` payloads to its pool.
"""


def _join_shard(payload):
    return payload


def _init_worker():
    return None


def run(pool_cls, shards):
    with pool_cls(initializer=_init_worker) as pool:
        futures = [pool.submit(_join_shard, shard) for shard in shards]
        results = pool.map(_join_shard, shards)
    return futures, results
