"""RPR013 fixture (bad): blocking work performed while holding a lock."""


class Server:
    def flush(self, fut):
        with self._lock:
            return fut.result()

    def refresh(self, plan, s):
        with self._cache_lock:
            self.index = prepare_from_plan(plan, s)


def drain(queue_lock, sock):
    with queue_lock:
        sock.sendall(b"payload")
