"""RPR011 fixture (good): every guarded attribute mutates under its lock."""

import threading


class BatchCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._calls = 0
        self._records = []

    def record_batch(self, rids):
        with self._lock:
            self._calls += 1
            self._records.extend(rids)

    def record_raw(self, rid):
        with self._lock:
            self._calls += 1
            self._records.append(rid)

    def describe(self):
        # Reads stay unflagged: torn reads are the caller's explicit
        # trade-off, lost writes are not.
        return self._calls

    def rename(self, label):
        # Unguarded attributes never join the contract.
        self.label = label


class ResidencyMap:
    def __init__(self):
        self._table_lock = threading.Lock()
        self._entries = {}

    def insert(self, key, value):
        with self._table_lock:
            self._entries[key] = value

    def drop(self, key):
        with self._table_lock:
            del self._entries[key]
