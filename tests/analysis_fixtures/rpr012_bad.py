"""RPR012 fixture (bad): callers reaching into other objects' private locks."""


def snapshot(hist):
    with hist._lock:
        return hist.count, hist.total


def pause(cache):
    cache._table_lock.acquire()


def steal(registry):
    return registry._lock
