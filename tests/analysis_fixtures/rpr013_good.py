"""RPR013 fixture (good): snapshot under the lock, block outside it."""

import threading


class Server:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache_lock = threading.Lock()
        self.index = None
        self.pending = []

    def flush(self, fut):
        with self._lock:
            self.pending.clear()
        return fut.result()

    def refresh(self, plan, s, build):
        fresh = build(plan, s)
        with self._cache_lock:
            self.index = fresh

    def coalesce(self, build):
        with self._cache_lock:
            self.index = build()  # repro: noqa RPR013 singleflight: this lock exists to serialize the build

    def snapshot(self):
        with self._lock:
            return list(self.pending)


def drain(queue_lock, sock):
    with queue_lock:
        payload = b"payload"
    sock.sendall(payload)
