"""RPR002 fixture (good): module-level functions cross the boundary.

Linted with ``module="repro.future.fixture"`` so the rule is in scope.
"""


def _probe_chunk(chunk):
    return chunk


def _init_worker():
    return None


def run(pool_cls, chunks):
    with pool_cls(initializer=_init_worker) as pool:
        futures = [pool.submit(_probe_chunk, chunk) for chunk in chunks]
        results = pool.map(_probe_chunk, chunks)
    return futures, results
