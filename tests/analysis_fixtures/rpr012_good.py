"""RPR012 fixture (good): owners expose locked methods; callers use them."""

import threading


class Instrument:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.total += value

    def summary(self):
        # The owner takes its own lock; self._lock is sanctioned.
        with self._lock:
            return self.count, self.total

    @classmethod
    def shared(cls):
        # cls-qualified locks are the class's own too.
        return cls._class_lock


def snapshot(hist):
    return hist.summary()
