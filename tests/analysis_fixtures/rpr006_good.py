"""RPR006 fixture (good): the caller supplies the (seeded) rng.

Linted with ``module="repro.core.fixture"``; the same source linted as
``module="repro.datagen.fixture"`` is also exercised with the bad twin.
"""


def jitter(values, rng):
    order = sorted(values, key=lambda v: rng.random())
    return [v + rng.random() for v in order]
