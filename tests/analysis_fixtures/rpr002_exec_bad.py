"""RPR002 fixture (bad): unpicklable callables in the executor package.

Linted with ``module="repro.exec.fixture"`` so the rescoped rule applies
to the new executor home, not just the legacy ``repro.future`` one.
"""


class ShardedRunner:
    def run(self, pool, shards):
        futures = [pool.submit(lambda s: s, shard) for shard in shards]
        results = pool.map(self._join_shard, shards)
        return futures, results

    def _join_shard(self, shard):
        return shard


def run_with_initializer(pool_cls, shards):
    def _setup():
        return None

    with pool_cls(initializer=_setup) as pool:
        return list(pool.map(_setup, shards))
