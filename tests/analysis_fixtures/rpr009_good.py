"""RPR009 fixture (good): governed loops, a waiver, and an exempt comprehension."""

from repro.governance.policy import governor


def build_index(s, trie, signature, stats):
    gov = governor("build", stats)
    for rec in s:
        if gov is not None:
            gov.tick()
        trie.insert(signature(rec.elements))


def scan_records(relation, out):
    gov = governor("probe")
    for rec in relation.records:
        if gov is not None:
            gov.tick()
        out.append(rec.rid)


def traverse(root, stats):
    visits = 0
    gov = governor("probe", stats)
    stack = [root]
    while stack:
        if gov is not None:
            gov.tick()
        node = stack.pop()
        visits += 1
        stack.extend(node.children)
    return visits


def head(s):
    for rec in s:  # repro: noqa RPR009 bounded: returns after the first record
        return rec
    return None


def cardinalities(s):
    return [rec.cardinality for rec in s]
