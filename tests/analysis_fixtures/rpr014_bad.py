"""RPR014 fixture (bad): thread-local ambient state escaping its module."""

import threading

from repro.obs.tracer import _STATE

import repro.governance.policy as policy_module


class RequestContext:
    def __init__(self):
        self._tls = threading.local()


def hijack(policy):
    policy_module._STATE.policy = policy


_AMBIENT = threading.local()
_AMBIENT.user = "import-thread-only"
