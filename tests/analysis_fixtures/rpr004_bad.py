"""RPR004 fixture (bad): mutable default arguments."""


def collect_pairs(pairs=[], seen={}):
    return pairs, seen


def configure(*, options=dict(), tags=set()):
    return options, tags
