"""RPR010 fixture (good): batch work routed through the kernel registry."""
from repro.kernels import get_backend


def pack(signatures, bits):
    return get_backend().pack_signatures(signatures, bits)
