"""RPR006 fixture (bad): randomness outside datagen/testing.

Linted with ``module="repro.core.fixture"`` so the ban is in scope.
"""
import random
import numpy as np
from random import shuffle


def jitter(values):
    shuffle(values)
    return [v + random.random() for v in values] + list(np.random.rand(3))
