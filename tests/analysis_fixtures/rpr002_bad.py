"""RPR002 fixture (bad): unpicklable callables shipped to an executor.

Linted with ``module="repro.future.fixture"`` so the rule is in scope.
"""


class ChunkedJoin:
    def run(self, pool, chunks):
        futures = [pool.submit(lambda c: c, chunk) for chunk in chunks]
        results = pool.map(self._probe_chunk, chunks)
        return futures, results

    def _probe_chunk(self, chunk):
        return chunk


def run_with_initializer(pool_cls, chunks):
    def _setup():
        return None

    with pool_cls(initializer=_setup) as pool:
        return list(pool.map(_setup, chunks))
