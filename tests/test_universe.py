"""Unit tests for the label <-> id dictionary."""

from __future__ import annotations

import pytest

from repro.relations.universe import Universe


class TestUniverse:
    def test_encode_assigns_dense_ids(self):
        u = Universe()
        assert u.encode("a") == 0
        assert u.encode("b") == 1
        assert u.encode("c") == 2

    def test_encode_is_idempotent(self):
        u = Universe()
        assert u.encode("x") == u.encode("x")
        assert len(u) == 1

    def test_constructor_seed_labels(self):
        u = Universe(["a", "b", "a"])
        assert len(u) == 2
        assert u.encode("a") == 0

    def test_decode_roundtrip(self):
        u = Universe()
        labels = ["rock", "jazz", ("tuple", "label"), 42]
        ids = [u.encode(label) for label in labels]
        assert [u.decode(i) for i in ids] == labels

    def test_decode_unknown_raises(self):
        u = Universe(["a"])
        with pytest.raises(IndexError):
            u.decode(5)

    def test_decode_negative_raises(self):
        u = Universe(["a"])
        with pytest.raises(IndexError):
            u.decode(-1)

    def test_encode_set(self):
        u = Universe()
        encoded = u.encode_set(["b", "a", "b"])
        assert encoded == frozenset({0, 1})

    def test_decode_set(self):
        u = Universe()
        ids = u.encode_set(["x", "y"])
        assert u.decode_set(ids) == frozenset({"x", "y"})

    def test_lookup_does_not_assign(self):
        u = Universe()
        assert u.lookup("new") is None
        assert len(u) == 0

    def test_contains_and_iter(self):
        u = Universe(["p", "q"])
        assert "p" in u and "r" not in u
        assert list(u) == ["p", "q"]

    def test_table1_alphabet_example(self):
        """The paper maps letters to integers in alphabetical order."""
        u = Universe("abcdefgh")
        assert u.encode("a") == 0
        assert u.encode("h") == 7
        assert u.encode_set("bdfg") == frozenset({1, 3, 5, 6})
