"""Unit tests for PTSJ (the paper's primary contribution)."""

from __future__ import annotations

import pytest

from repro.core.ptsj import PTSJ
from repro.relations.relation import Relation
from tests.conftest import TABLE1_EXPECTED, oracle_pairs, random_relation


class TestCorrectness:
    def test_table1_example(self, table1_profiles, table1_preferences):
        result = PTSJ().join(table1_profiles, table1_preferences)
        assert result.pair_set() == TABLE1_EXPECTED

    def test_matches_oracle_random(self, small_pair):
        r, s = small_pair
        assert PTSJ().join(r, s).pair_set() == oracle_pairs(r, s)

    def test_self_join(self):
        rel = random_relation(80, 8, 50, seed=70)
        assert PTSJ().join(rel, rel).pair_set() == oracle_pairs(rel, rel)

    def test_empty_relations(self):
        empty = Relation([])
        other = Relation.from_sets([{1}])
        assert len(PTSJ(bits=16).join(empty, other)) == 0
        assert len(PTSJ(bits=16).join(other, empty)) == 0
        assert len(PTSJ(bits=16).join(empty, empty)) == 0

    def test_empty_sets_match_everything(self):
        r = Relation.from_sets([{1}, set()])
        s = Relation.from_sets([set(), {1, 2}])
        result = PTSJ().join(r, s)
        # Every r contains the empty s-set; only nothing contains {1,2}.
        assert result.pair_set() == {(0, 0), (1, 0)}

    def test_duplicate_sets_all_reported(self):
        r = Relation.from_sets([{1, 2, 3}])
        s = Relation.from_sets([{1, 2}, {1, 2}, {1, 2}])
        result = PTSJ().join(r, s)
        assert result.pair_set() == {(0, 0), (0, 1), (0, 2)}

    @pytest.mark.parametrize("bits", [8, 64, 333, 2048])
    def test_any_signature_length_is_correct(self, bits, small_pair):
        """Signature length affects speed, never correctness."""
        r, s = small_pair
        assert PTSJ(bits=bits).join(r, s).pair_set() == oracle_pairs(r, s)

    def test_merge_identical_off_same_result(self, small_pair):
        r, s = small_pair
        merged = PTSJ(merge_identical=True).join(r, s).pair_set()
        unmerged = PTSJ(merge_identical=False).join(r, s).pair_set()
        assert merged == unmerged


class TestStatsAndExtension:
    def test_default_bits_follow_strategy(self, small_pair):
        r, s = small_pair
        result = PTSJ().join(r, s)
        cards = [rec.cardinality for rec in r] + [rec.cardinality for rec in s]
        avg_c = sum(cards) / len(cards)
        assert result.stats.signature_bits <= 16 * avg_c + 32
        assert result.stats.signature_bits >= 8

    def test_explicit_bits_respected(self, small_pair):
        r, s = small_pair
        assert PTSJ(bits=128).join(r, s).stats.signature_bits == 128

    def test_merge_identical_reduces_verifications(self):
        """Sec. III-E1: duplicates cost one comparison instead of many."""
        r = random_relation(50, 6, 12, seed=71)
        base = Relation.from_sets([{1, 2}, {1, 2}, {1, 2}, {1, 2}, {3, 4}] * 10)
        with_merge = PTSJ(merge_identical=True).join(r, base)
        without = PTSJ(merge_identical=False).join(r, base)
        assert with_merge.pair_set() == without.pair_set()
        assert with_merge.stats.verifications < without.stats.verifications

    def test_node_visits_accumulated(self, small_pair):
        r, s = small_pair
        stats = PTSJ().join(r, s).stats
        assert stats.node_visits >= len(r)  # at least the root per probe

    def test_index_nodes_bounded(self, small_pair):
        r, s = small_pair
        stats = PTSJ().join(r, s).stats
        assert 0 < stats.index_nodes <= 2 * len(s)

    def test_built_trie_reusable(self, small_pair):
        r, s = small_pair
        algo = PTSJ()
        algo.join(r, s)
        trie = algo.built_trie()
        assert trie.leaf_count > 0

    def test_built_trie_before_join_raises(self):
        with pytest.raises(RuntimeError):
            PTSJ().built_trie()

    def test_candidates_at_least_pairs(self, small_pair):
        """Every output pair's group passed verification."""
        r, s = small_pair
        stats = PTSJ().join(r, s).stats
        assert stats.verifications >= stats.candidates > 0

    def test_longer_signatures_filter_better(self):
        """More bits -> fewer false-positive candidates (Sec. III-C)."""
        r = random_relation(150, 10, 500, seed=72)
        s = random_relation(150, 6, 500, seed=73)
        short = PTSJ(bits=16).join(r, s).stats
        long = PTSJ(bits=512).join(r, s).stats
        assert long.candidates < short.candidates
        assert long.pairs == short.pairs
