"""Tests for the observability layer (``repro.obs``).

Covers the span/tracer semantics, metrics registry, JSONL export
round-trip, the NullTracer overhead bound, and — the acceptance
criterion — that the span tree's top-level ``build``/``probe`` times
match ``JoinStats`` for every instrumented execution path.
"""

from __future__ import annotations

import time

import pytest

from repro.core.registry import (
    available_algorithms,
    prepare_index,
    set_containment_join,
)
from repro.errors import ReproError
from repro.extensions.equality import equality_join_on_index
from repro.extensions.set_index import PatriciaSetIndex
from repro.extensions.similarity import jaccard_join_on_index, similarity_join_on_index
from repro.extensions.superset import superset_join_on_index
from repro.exec import ResilientParallelJoin, RetryPolicy
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    PhaseProfiler,
    Span,
    Tracer,
    current_tracer,
    default_registry,
    read_trace,
    render_tree,
    reset_default_registry,
    set_tracer,
    use,
    write_trace,
)

from .conftest import random_relation


# ----------------------------------------------------------------------
# Span / Tracer semantics
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("build"):
            pass
        with tracer.span("probe"):
            with tracer.span("verify"):
                pass
        assert set(tracer.root.children) == {"build", "probe"}
        assert set(tracer.root.children["probe"].children) == {"verify"}

    def test_spans_merge_by_name(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("probe"):
                with tracer.span("verify"):
                    pass
        probe = tracer.root.find("probe")
        assert probe is not None and probe.calls == 5
        verify = tracer.root.find("probe", "verify")
        assert verify is not None and verify.calls == 5
        # Merging keeps the tree bounded: one node per (parent, name).
        assert len(tracer.root.children) == 1
        assert len(probe.children) == 1

    def test_span_seconds_accumulate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("probe"):
                time.sleep(0.002)
        probe = tracer.root.find("probe")
        assert probe.seconds >= 0.006
        assert probe.calls == 3

    def test_count_attributes_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("probe"):
            tracer.count("pairs", 3)
            with tracer.span("verify"):
                tracer.count("candidates", 7)
        assert tracer.root.find("probe").counters == {"pairs": 3}
        assert tracer.root.find("probe", "verify").counters == {"candidates": 7}

    def test_record_merges_external_measurements(self):
        tracer = Tracer()
        tracer.record("probe", 0.5, {"chunks": 1, "pairs": 10})
        tracer.record("probe", 0.25, {"chunks": 1, "pairs": 5}, calls=2)
        probe = tracer.root.find("probe")
        assert probe.seconds == pytest.approx(0.75)
        assert probe.calls == 3
        assert probe.counters == {"chunks": 2, "pairs": 15}

    def test_record_mirror_false_skips_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        tracer.record("verify", 0.1, {"pairs": 4}, mirror=False)
        assert "pairs" not in registry.snapshot()
        assert tracer.root.find("verify").counters == {"pairs": 4}

    def test_phase_seconds_reports_direct_children(self):
        tracer = Tracer()
        with tracer.span("build"):
            pass
        with tracer.span("probe"):
            with tracer.span("verify"):
                pass
        phases = tracer.phase_seconds()
        assert set(phases) == {"build", "probe"}

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("probe"):
                raise ValueError("boom")
        assert tracer.current is tracer.root
        assert tracer.root.find("probe").calls == 1

    def test_span_find_missing_path(self):
        assert Span("root").find("nope", "deeper") is None


class TestCurrentTracer:
    def test_default_is_null(self):
        assert isinstance(current_tracer(), NullTracer)
        assert not current_tracer().enabled

    def test_use_scopes_and_restores(self):
        tracer = Tracer()
        before = current_tracer()
        with use(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is before

    def test_use_restores_on_exception(self):
        tracer = Tracer()
        before = current_tracer()
        with pytest.raises(RuntimeError):
            with use(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is before

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_tracer(previous)


class TestNullTracer:
    def test_all_operations_are_noops(self):
        null = NullTracer()
        with null.span("probe") as span:
            assert span is None
        null.count("pairs", 3)
        null.observe("probe_seconds", 0.1)
        null.record("probe", 0.5, {"pairs": 1})
        null.finish()
        assert null.phase_seconds() == {}

    def test_span_handles_are_shared(self):
        null = NullTracer()
        assert null.span("a") is null.span("b")

    def test_overhead_bound_on_a_small_join(self):
        """Null-tracer calls must stay well under 5% of a small join."""
        r = random_relation(120, 10, 60, seed=3)
        s = random_relation(120, 6, 60, seed=4)
        runs = []
        for _ in range(3):
            start = time.perf_counter()
            set_containment_join(r, s, algorithm="ptsj")
            runs.append(time.perf_counter() - start)
        join_seconds = min(runs)

        null = NullTracer()
        cycles = 10_000
        start = time.perf_counter()
        for _ in range(cycles):
            with null.span("probe"):
                pass
            null.count("pairs")
        per_cycle = (time.perf_counter() - start) / cycles
        # An untraced join performs ~10 null tracer calls per probe
        # *batch* (never per record); 20 cycles per join is generous.
        assert per_cycle * 20 < max(join_seconds, 0.002) * 0.05


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_snapshot_expands_histograms(self):
        registry = MetricsRegistry()
        registry.counter("pairs").inc(2)
        registry.gauge("depth").set(7)
        hist = registry.histogram("probe_seconds")
        hist.observe(0.25)
        hist.observe(0.75)
        snap = registry.snapshot()
        assert snap["pairs"] == 2
        assert snap["depth"] == 7
        assert snap["probe_seconds.count"] == 2
        assert snap["probe_seconds.sum"] == pytest.approx(1.0)
        assert snap["probe_seconds.min"] == pytest.approx(0.25)
        assert snap["probe_seconds.max"] == pytest.approx(0.75)
        assert hist.mean == pytest.approx(0.5)

    def test_registries_are_isolated(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("pairs").inc(5)
        assert "pairs" not in b.snapshot()
        b.counter("pairs").inc(1)
        assert a.snapshot()["pairs"] == 5
        assert b.snapshot()["pairs"] == 1

    def test_merge_and_reset(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("pairs").inc(1)
        b.counter("pairs").inc(2)
        b.histogram("t").observe(1.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["pairs"] == 3
        assert snap["t.count"] == 1
        a.reset()
        assert a.snapshot() == {}

    def test_default_registry_reset(self):
        default_registry().counter("obs_test_marker").inc(1)
        assert default_registry().snapshot()["obs_test_marker"] == 1
        reset_default_registry()
        assert "obs_test_marker" not in default_registry().snapshot()

    def test_tracer_mirrors_counts_into_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("probe"):
            tracer.count("pairs", 4)
            tracer.observe("probe_seconds", 0.5)
        snap = registry.snapshot()
        assert snap["pairs"] == 4
        assert snap["probe_seconds.count"] == 1

    def test_stats_snapshot_registry(self):
        r = random_relation(40, 8, 32, seed=5)
        s = random_relation(40, 5, 32, seed=6)
        registry = MetricsRegistry()
        with use(Tracer(registry=registry)):
            result = set_containment_join(r, s, algorithm="ptsj")
        result.stats.snapshot_registry(registry)
        assert result.stats.extras["metric.pairs"] == len(result)

    def test_thread_hammer_drops_no_updates(self):
        """Regression: registry mutation is lock-guarded, so the join
        server's concurrent request threads can share one registry
        without losing increments (pre-fix, ``value += n`` raced)."""
        import threading

        registry = MetricsRegistry()
        threads_n, updates = 8, 5000
        barrier = threading.Barrier(threads_n)

        def hammer(worker: int) -> None:
            barrier.wait(timeout=30)
            for i in range(updates):
                # Same instrument names from every thread: maximum contention.
                registry.counter("hits").inc()
                registry.gauge("inflight").add(1 if i % 2 == 0 else -1)
                registry.histogram("latency").observe(1.0)
                registry.counter(f"per.{worker}").inc(2)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        snap = registry.snapshot()
        assert snap["hits"] == threads_n * updates
        assert snap["inflight"] == 0.0  # +1/-1 pairs cancel exactly
        assert snap["latency.count"] == threads_n * updates
        assert snap["latency.sum"] == pytest.approx(threads_n * updates)
        assert snap["latency.min"] == snap["latency.max"] == 1.0
        for worker in range(threads_n):
            assert snap[f"per.{worker}"] == 2 * updates

    def test_histogram_concurrent_observe_keeps_fields_consistent(self):
        import threading

        hist = MetricsRegistry().histogram("t")
        values = [0.5, 1.5]

        def observe(value: float) -> None:
            for _ in range(4000):
                hist.observe(value)

        threads = [threading.Thread(target=observe, args=(v,)) for v in values]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert hist.count == 8000
        assert hist.total == pytest.approx(8000.0)
        assert (hist.min, hist.max) == (0.5, 1.5)


# ----------------------------------------------------------------------
# JSONL export
# ----------------------------------------------------------------------
class TestTraceExport:
    def _sample_tree(self) -> Span:
        root = Span("trace")
        build = root.child("build")
        build.seconds, build.calls = 0.5, 1
        probe = root.child("probe")
        probe.seconds, probe.calls = 1.5, 3
        probe.add_counters({"pairs": 10, "candidates": 12})
        verify = probe.child("verify")
        verify.seconds, verify.calls = 0.25, 3
        verify.mem_peak_bytes = 4096
        return root

    def test_round_trip(self, tmp_path):
        root = self._sample_tree()
        path = tmp_path / "trace.jsonl"
        write_trace(path, root, meta={"algorithm": "ptsj"})
        loaded, meta = read_trace(path)
        assert meta["algorithm"] == "ptsj"
        assert meta["root"] == "trace"
        for (da, a), (db, b) in zip(root.walk(), loaded.walk()):
            assert (da, a.name, a.calls) == (db, b.name, b.calls)
            assert a.seconds == pytest.approx(b.seconds)
            assert a.counters == b.counters
            assert a.mem_peak_bytes == b.mem_peak_bytes

    def test_first_line_is_meta_header(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, self._sample_tree())
        first = path.read_text().splitlines()[0]
        assert '"type": "meta"' in first

    def test_read_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ReproError):
            read_trace(path)

    def test_read_rejects_orphan_span(self, tmp_path):
        path = tmp_path / "orphan.jsonl"
        path.write_text(
            '{"type": "meta"}\n'
            '{"type": "span", "id": 0, "parent": 99, "name": "x", '
            '"seconds": 0, "calls": 1}\n'
        )
        with pytest.raises(ReproError):
            read_trace(path)

    def test_read_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ReproError):
            read_trace(path)

    def test_render_tree_mentions_phases(self):
        text = render_tree(self._sample_tree())
        assert "build" in text
        assert "probe" in text
        assert "verify" in text
        assert "pairs=10" in text

    def test_cli_trace_file(self, tmp_path):
        """``repro-scj join --trace`` writes a loadable span tree."""
        from repro.cli import main
        from repro.relations.io import write_relation

        r = random_relation(30, 8, 32, seed=7)
        s = random_relation(30, 5, 32, seed=8)
        r_path, s_path = tmp_path / "r.txt", tmp_path / "s.txt"
        write_relation(r, r_path)
        write_relation(s, s_path)
        trace_path = tmp_path / "out.jsonl"
        code = main(["join", str(r_path), str(s_path), "--algorithm", "ptsj",
                     "--trace", str(trace_path), "--metrics"])
        assert code == 0
        root, meta = read_trace(trace_path)
        assert meta["algorithm"] == "ptsj"
        assert root.find("build") is not None
        assert root.find("probe") is not None


# ----------------------------------------------------------------------
# Phase profiler
# ----------------------------------------------------------------------
class TestPhaseProfiler:
    def test_profiles_only_gated_phases(self):
        profiler = PhaseProfiler(["probe"])
        tracer = Tracer(profiler=profiler)
        with tracer.span("build"):
            sum(range(100))
        with tracer.span("probe"):
            sum(range(100))
        assert profiler.profiled_phases() == ("probe",)
        assert "function calls" in profiler.summary("probe")
        assert "no profile captured" in profiler.summary("build")

    def test_nested_gated_phase_covered_by_outer(self):
        profiler = PhaseProfiler(["probe", "verify"])
        tracer = Tracer(profiler=profiler)
        with tracer.span("probe"):
            with tracer.span("verify"):
                sum(range(10))
        # cProfile cannot nest: verify rode along inside probe's capture.
        assert profiler.profiled_phases() == ("probe",)


# ----------------------------------------------------------------------
# Memory sampling
# ----------------------------------------------------------------------
class TestMemorySampling:
    def test_span_records_peak_delta(self):
        tracer = Tracer(sample_memory=True)
        try:
            with tracer.span("build"):
                blob = [0] * 50_000
                del blob
            assert tracer.root.find("build").mem_peak_bytes > 0
        finally:
            tracer.finish()

    def test_finish_stops_tracemalloc_it_started(self):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        tracer = Tracer(sample_memory=True)
        tracer.finish()
        assert tracemalloc.is_tracing() == was_tracing


# ----------------------------------------------------------------------
# Acceptance: span tree vs JoinStats, every execution path
# ----------------------------------------------------------------------
def _assert_phases_match(root: Span, stats, rel_tol: float = 0.05) -> None:
    """The acceptance criterion: top-level build+probe spans == stats."""
    build = root.find("build")
    probe = root.find("probe")
    assert build is not None and probe is not None
    total_stats = stats.build_seconds + stats.probe_seconds
    total_spans = build.seconds + probe.seconds
    assert total_spans == pytest.approx(total_stats, rel=rel_tol, abs=1e-4)


@pytest.mark.parametrize("name", available_algorithms())
def test_span_tree_matches_stats_per_algorithm(name):
    r = random_relation(80, 10, 48, seed=13)
    s = random_relation(80, 6, 48, seed=14)
    tracer = Tracer()
    with use(tracer):
        result = set_containment_join(r, s, algorithm=name)
    _assert_phases_match(tracer.root, result.stats)
    probe = tracer.root.find("probe")
    assert probe.counters["pairs"] == len(result)


def test_span_tree_matches_stats_probe_many():
    s = random_relation(60, 6, 40, seed=15)
    queries = [random_relation(40, 9, 40, seed=16 + i, start_id=1000 * i)
               for i in range(3)]
    tracer = Tracer()
    with use(tracer):
        index = prepare_index(s, algorithm="ptsj")
        for q in queries:
            index.probe_many(q)
    totals = index.join_stats()
    _assert_phases_match(tracer.root, totals)
    assert tracer.root.find("probe").calls == len(queries)


def test_span_tree_matches_stats_resilient_parallel():
    r = random_relation(90, 10, 48, seed=17)
    s = random_relation(90, 6, 48, seed=18)
    executor = ResilientParallelJoin(
        algorithm="ptsj", workers=2, chunks=4,
        retry_policy=RetryPolicy(max_attempts=2),
    )
    tracer = Tracer()
    with use(tracer):
        result = executor.join(r, s)
    # stats.probe_seconds sums per-chunk worker probe times; the probe
    # span records exactly those chunk durations, so they agree.
    _assert_phases_match(tracer.root, result.stats)
    assert tracer.root.find("probe").counters["chunks"] == 4


def test_signature_phase_split_sums_to_probe():
    r = random_relation(80, 10, 48, seed=19)
    s = random_relation(80, 6, 48, seed=20)
    tracer = Tracer()
    with use(tracer):
        result = set_containment_join(r, s, algorithm="ptsj")
    probe = tracer.root.find("probe")
    inner = sum(child.seconds for child in probe.children.values())
    assert inner <= probe.seconds
    assert inner == pytest.approx(probe.seconds, rel=0.25, abs=2e-3)
    assert probe.find("verify").counters["candidates"] == result.stats.candidates


def test_traced_and_untraced_probe_paths_agree():
    """The traced signature probe override emits identical output."""
    r = random_relation(70, 10, 48, seed=21)
    s = random_relation(70, 6, 48, seed=22)
    plain = set_containment_join(r, s, algorithm="ptsj")
    with use(Tracer()):
        traced = set_containment_join(r, s, algorithm="ptsj")
    assert traced.pairs == plain.pairs
    assert traced.stats.candidates == plain.stats.candidates
    assert traced.stats.verifications == plain.stats.verifications
    assert traced.stats.node_visits == plain.stats.node_visits


class TestExtensionSpans:
    """The extensions time their probe inside the span (one clock)."""

    @pytest.fixture
    def indexed(self):
        r = random_relation(50, 8, 32, seed=23)
        s = random_relation(50, 8, 32, seed=24)
        return r, PatriciaSetIndex(s)

    @pytest.mark.parametrize("probe", [
        lambda r, idx: equality_join_on_index(r, idx),
        lambda r, idx: superset_join_on_index(r, idx),
        lambda r, idx: similarity_join_on_index(r, idx, threshold=3),
        lambda r, idx: jaccard_join_on_index(r, idx, threshold=0.5),
    ], ids=["equality", "superset", "similarity", "jaccard"])
    def test_probe_span_matches_probe_seconds(self, indexed, probe):
        r, index = indexed
        tracer = Tracer()
        with use(tracer):
            result = probe(r, index)
        span = tracer.root.find("probe")
        assert span is not None
        # stats.probe_seconds is timed inside the span, so the span can
        # only be marginally longer (its own enter/exit overhead).
        assert span.seconds >= result.stats.probe_seconds
        assert span.seconds == pytest.approx(result.stats.probe_seconds,
                                             rel=0.05, abs=1e-3)
        assert span.counters["pairs"] == len(result)
