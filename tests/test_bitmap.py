"""Unit tests for signature bit algebra."""

from __future__ import annotations

import pytest

from repro.errors import SignatureError
from repro.signatures.bitmap import (
    bit_segment,
    bits_to_sig,
    full_mask,
    get_bit,
    hamming,
    is_subset_sig,
    is_superset_sig,
    popcount,
    set_bit,
    sig_to_bits,
    validate_signature,
)


class TestContainment:
    def test_subset_basic(self):
        assert is_subset_sig(0b0101, 0b0111)
        assert not is_subset_sig(0b0101, 0b0011)

    def test_zero_is_subset_of_everything(self):
        assert is_subset_sig(0, 0)
        assert is_subset_sig(0, 0b1111)

    def test_subset_is_reflexive(self):
        assert is_subset_sig(0b1010, 0b1010)

    def test_superset_alias(self):
        assert is_superset_sig(0b0111, 0b0101)
        assert not is_superset_sig(0b0101, 0b0111)

    def test_paper_table1_signatures(self):
        """Table I: u1=0111 covers p1=0101 and p2=0110 but not p3=1011."""
        u1 = bits_to_sig("0111")
        assert is_subset_sig(bits_to_sig("0101"), u1)
        assert is_subset_sig(bits_to_sig("0110"), u1)
        assert not is_subset_sig(bits_to_sig("1011"), u1)


class TestCounting:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 1000) | 1) == 2

    def test_hamming(self):
        assert hamming(0b1010, 0b1010) == 0
        assert hamming(0b1010, 0b0101) == 4
        assert hamming(0b1100, 0b1000) == 1


class TestBitAccess:
    def test_get_bit_msb_first(self):
        # signature '1000' of width 4: logical position 0 is the MSB.
        sig = bits_to_sig("1000")
        assert get_bit(sig, 0, 4) == 1
        assert get_bit(sig, 3, 4) == 0

    def test_set_bit_roundtrip(self):
        sig = 0
        sig = set_bit(sig, 0, 4)
        sig = set_bit(sig, 3, 4)
        assert sig_to_bits(sig, 4) == "1001"

    def test_set_bit_out_of_range(self):
        with pytest.raises(SignatureError):
            set_bit(0, 4, 4)
        with pytest.raises(SignatureError):
            set_bit(0, -1, 4)

    def test_bit_segment_interior(self):
        sig = bits_to_sig("011010")
        assert bit_segment(sig, 1, 4, 6) == 0b110

    def test_bit_segment_full_width(self):
        sig = bits_to_sig("1011")
        assert bit_segment(sig, 0, 4, 4) == sig

    def test_bit_segment_empty(self):
        assert bit_segment(0b1011, 2, 2, 4) == 0

    def test_bit_segment_bounds_checked(self):
        with pytest.raises(SignatureError):
            bit_segment(0, 3, 2, 4)
        with pytest.raises(SignatureError):
            bit_segment(0, 0, 5, 4)


class TestValidation:
    def test_validate_accepts_fitting(self):
        validate_signature(0b1111, 4)

    def test_validate_rejects_overflow(self):
        with pytest.raises(SignatureError):
            validate_signature(0b10000, 4)

    def test_validate_rejects_negative(self):
        with pytest.raises(SignatureError):
            validate_signature(-1, 4)

    def test_validate_rejects_zero_width(self):
        with pytest.raises(SignatureError):
            validate_signature(0, 0)

    def test_full_mask(self):
        assert full_mask(4) == 0b1111
        with pytest.raises(SignatureError):
            full_mask(0)


class TestTextConversion:
    def test_sig_to_bits_pads(self):
        assert sig_to_bits(0b101, 6) == "000101"

    def test_bits_to_sig_rejects_garbage(self):
        with pytest.raises(SignatureError):
            bits_to_sig("10x1")
        with pytest.raises(SignatureError):
            bits_to_sig("")

    def test_roundtrip(self):
        for text in ("0", "1", "0101", "11110000"):
            assert sig_to_bits(bits_to_sig(text), len(text)) == text
