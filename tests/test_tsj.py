"""Unit tests for TSJ, the plain-binary-trie ablation (Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.baselines.tsj import TSJ
from repro.core.ptsj import PTSJ
from repro.relations.relation import Relation
from tests.conftest import TABLE1_EXPECTED, oracle_pairs, random_relation


class TestCorrectness:
    def test_table1_example(self, table1_profiles, table1_preferences):
        assert TSJ().join(table1_profiles, table1_preferences).pair_set() == TABLE1_EXPECTED

    def test_matches_oracle_random(self, small_pair):
        r, s = small_pair
        assert TSJ().join(r, s).pair_set() == oracle_pairs(r, s)

    @pytest.mark.parametrize("bits", [8, 48])
    def test_any_signature_length(self, bits, small_pair):
        r, s = small_pair
        assert TSJ(bits=bits).join(r, s).pair_set() == oracle_pairs(r, s)

    def test_empty_relations(self):
        empty = Relation([])
        other = Relation.from_sets([{1}])
        assert len(TSJ(bits=8).join(empty, other)) == 0
        assert len(TSJ(bits=8).join(other, empty)) == 0

    def test_merge_identical_consistent(self, small_pair):
        r, s = small_pair
        assert (
            TSJ(merge_identical=True).join(r, s).pair_set()
            == TSJ(merge_identical=False).join(r, s).pair_set()
        )


class TestAblationStructure:
    def test_same_result_as_ptsj(self, small_pair):
        """TSJ and PTSJ differ only in the trie, never in output."""
        r, s = small_pair
        assert TSJ(bits=64).join(r, s).pair_set() == PTSJ(bits=64).join(r, s).pair_set()

    def test_more_index_nodes_than_ptsj(self):
        """Sec. III-A: single-branch chains blow up the plain trie."""
        r = random_relation(50, 6, 200, seed=110)
        s = random_relation(200, 6, 200, seed=111)
        tsj_nodes = TSJ(bits=128).join(r, s).stats.index_nodes
        ptsj_nodes = PTSJ(bits=128).join(r, s).stats.index_nodes
        assert tsj_nodes > 3 * ptsj_nodes

    def test_more_node_visits_than_ptsj(self):
        """The enqueue-and-visit overhead that makes Algorithm 4 lose."""
        r = random_relation(50, 6, 200, seed=112)
        s = random_relation(200, 6, 200, seed=113)
        tsj_visits = TSJ(bits=128).join(r, s).stats.node_visits
        ptsj_visits = PTSJ(bits=128).join(r, s).stats.node_visits
        assert tsj_visits > ptsj_visits
