"""Unit tests for the plain binary trie (Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.errors import SignatureError, TrieError
from repro.signatures.bitmap import bits_to_sig
from repro.tries.binary_trie import BinaryTrie
from tests.test_patricia_trie import brute_subsets, brute_supersets, random_signatures


def build(bits: int, signatures: list[int]) -> BinaryTrie:
    trie = BinaryTrie(bits)
    for i, sig in enumerate(signatures):
        trie.insert(sig).append(i)
    return trie


class TestConstruction:
    def test_invalid_width(self):
        with pytest.raises(TrieError):
            BinaryTrie(0)

    def test_empty_trie_queries(self):
        trie = BinaryTrie(8)
        assert trie.subset_leaves(0xFF) == []
        assert trie.superset_leaves(0) == []
        assert trie.equal_leaf(0) is None
        assert len(trie) == 0

    def test_duplicate_signature_shares_leaf(self):
        trie = BinaryTrie(6)
        assert trie.insert(0b101) is trie.insert(0b101)
        assert len(trie) == 1

    def test_signature_too_wide_rejected(self):
        with pytest.raises(SignatureError):
            BinaryTrie(4).insert(0b10000)

    def test_paper_figure2_node_count(self):
        """Fig. 2: inserting 0101, 0110, 1011 into a plain 4-bit trie makes
        11 nodes (root + 4 + 2 + 4), versus the Patricia trie's 5 — the
        single-branch blow-up of Sec. III-A."""
        sigs = [bits_to_sig(s) for s in ("0101", "0110", "1011")]
        trie = build(4, sigs)
        assert trie.node_count() == 11

    def test_single_branch_blowup_vs_patricia(self):
        """k (b - lg k) + 2k growth: far more nodes than 2k - 1."""
        sigs = random_signatures(50, 64, 0.2, seed=30)
        trie = build(64, sigs)
        assert trie.node_count() > 4 * len(trie)

    def test_leaves_enumerate_signatures(self):
        sigs = random_signatures(60, 16, 0.5, seed=31)
        trie = build(16, sigs)
        assert {leaf.signature for leaf in trie.leaves()} == set(sigs)


class TestSubsetEnumeration:
    def test_paper_example(self):
        """Querying 0111 (u1) returns leaves p1 (0101) and p2 (0110)."""
        trie = BinaryTrie(4)
        trie.insert(bits_to_sig("0101")).append("p1")
        trie.insert(bits_to_sig("0110")).append("p2")
        trie.insert(bits_to_sig("1011")).append("p3")
        found = {item for leaf in trie.subset_leaves(bits_to_sig("0111"))
                 for item in leaf.items}
        assert found == {"p1", "p2"}

    @pytest.mark.parametrize("density", [0.2, 0.5])
    def test_matches_brute_force(self, density):
        bits = 20
        sigs = random_signatures(100, bits, density, seed=32)
        trie = build(bits, sigs)
        for query in random_signatures(30, bits, density, seed=33):
            found = {leaf.signature for leaf in trie.subset_leaves(query)}
            assert found == brute_subsets(sigs, query)

    def test_visits_exceed_patricia(self):
        """The same query walks more nodes than the Patricia trie — the
        reason the paper rejects Algorithm 4."""
        from repro.tries.patricia import PatriciaTrie

        bits = 48
        sigs = random_signatures(100, bits, 0.2, seed=34)
        plain = build(bits, sigs)
        patricia = PatriciaTrie(bits)
        for sig in sigs:
            patricia.insert(sig)
        query = sigs[0] | sigs[1] | sigs[2]
        plain_found = {leaf.signature for leaf in plain.subset_leaves(query)}
        pat_found = {leaf.signature for leaf in patricia.subset_leaves(query)}
        assert plain_found == pat_found
        assert plain.visits_last_query > patricia.visits_last_query


class TestSupersetEnumeration:
    def test_matches_brute_force(self):
        bits = 18
        sigs = random_signatures(80, bits, 0.4, seed=35)
        trie = build(bits, sigs)
        for query in random_signatures(25, bits, 0.2, seed=36):
            found = {leaf.signature for leaf in trie.superset_leaves(query)}
            assert found == brute_supersets(sigs, query)


class TestEqualAndHamming:
    def test_equal_lookup(self):
        sigs = random_signatures(50, 16, 0.5, seed=37)
        trie = build(16, sigs)
        assert trie.equal_leaf(sigs[0]).signature == sigs[0]

    def test_hamming_negative_threshold(self):
        with pytest.raises(TrieError):
            build(8, [1]).hamming_leaves(0, -2)

    @pytest.mark.parametrize("threshold", [0, 2, 4])
    def test_hamming_matches_brute_force(self, threshold):
        bits = 14
        sigs = random_signatures(70, bits, 0.5, seed=38)
        trie = build(bits, sigs)
        for query in random_signatures(15, bits, 0.5, seed=39):
            expected = {s for s in sigs if (s ^ query).bit_count() <= threshold}
            found = {leaf.signature for leaf, _ in trie.hamming_leaves(query, threshold)}
            assert found == expected

    def test_hamming_distances_correct(self):
        sigs = random_signatures(40, 12, 0.5, seed=40)
        trie = build(12, sigs)
        for leaf, dist in trie.hamming_leaves(sigs[0], 4):
            assert dist == (leaf.signature ^ sigs[0]).bit_count()
