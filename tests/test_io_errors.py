"""Malformed-input suite for the relation readers.

Every reader must surface each failure kind as a
:class:`~repro.errors.RelationError` with ``path:lineno`` context in
``"raise"`` mode, drop exactly the bad lines in ``"skip"`` mode, and
report them line-by-line in ``"collect"`` mode.  Hypothesis round-trip
properties pin the write/read cycle of all three formats.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RelationError
from repro.relations.io import (
    IngestReport,
    read_join_result,
    read_relation,
    read_relation_with_ids,
    write_join_result,
    write_relation,
    write_relation_with_ids,
)
from repro.relations.relation import Relation


class TestSetPerLineErrors:
    def test_non_integer_token_raises_with_context(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1 2\n3 oops 4\n")
        with pytest.raises(RelationError, match=r"rel\.txt:2.*non-integer"):
            read_relation(path)

    def test_negative_element_rejected(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1 -2\n")
        with pytest.raises(RelationError, match=r"rel\.txt:1"):
            read_relation(path)

    def test_skip_drops_only_bad_lines(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1 2\nbad line\n3\n")
        rel = read_relation(path, on_error="skip")
        assert len(rel) == 2
        # Skipped lines keep their line number reserved: surviving ids
        # still match physical file lines.
        assert rel.ids() == (0, 2)

    def test_collect_returns_relation_and_report(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1 2\nbad line\n3\nx y\n")
        rel, report = read_relation(path, on_error="collect")
        assert isinstance(report, IngestReport)
        assert len(rel) == 2
        assert report.total_lines == 4
        assert report.loaded == 2
        assert [bad.lineno for bad in report.skipped] == [2, 4]
        assert all("non-integer" in bad.reason for bad in report.skipped)
        assert not report.ok

    def test_collect_on_clean_file_reports_ok(self, tmp_path):
        path = tmp_path / "rel.txt"
        write_relation(Relation.from_sets([{1, 2}, {3}]), path)
        rel, report = read_relation(path, on_error="collect")
        assert report.ok
        assert report.loaded == 2

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1\n")
        with pytest.raises(RelationError, match="on_error"):
            read_relation(path, on_error="ignore")

    def test_report_summary_truncates(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("x\n" * 10)
        _, report = read_relation(path, on_error="collect")
        summary = report.summary(max_lines=3)
        assert "skipped 10" in summary
        assert "and 7 more" in summary


class TestIdPrefixedErrors:
    def test_missing_prefix_raises_with_context(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1: 2\n3 4\n")
        with pytest.raises(RelationError, match=r"rel\.txt:2.*rid"):
            read_relation_with_ids(path)

    def test_non_integer_id_raises_with_context(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("x: 1 2\n")
        with pytest.raises(RelationError, match=r"rel\.txt:1.*non-integer"):
            read_relation_with_ids(path)

    def test_duplicate_id_raises(self, tmp_path):
        """Regression: the docstring always promised this check."""
        path = tmp_path / "rel.txt"
        path.write_text("1: 2\n2: 3\n1: 4\n")
        with pytest.raises(RelationError, match=r"rel\.txt:3.*duplicate record id 1"):
            read_relation_with_ids(path)

    def test_duplicate_id_skipped_keeps_first(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1: 2\n1: 4\n")
        rel = read_relation_with_ids(path, on_error="skip")
        assert len(rel) == 1
        assert rel.get(1).elements == frozenset({2})

    def test_collect_reports_mixed_failures(self, tmp_path):
        path = tmp_path / "rel.txt"
        path.write_text("1: 2\nno prefix\n2: x\n1: 9\n3: 4\n")
        rel, report = read_relation_with_ids(path, on_error="collect")
        assert sorted(rel.ids()) == [1, 3]
        reasons = {bad.lineno: bad.reason for bad in report.skipped}
        assert "prefix" in reasons[2]
        assert "non-integer" in reasons[3]
        assert "duplicate" in reasons[4]


class TestJoinResultErrors:
    def test_wrong_arity_raises_with_context(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text("1 2\n1 2 3\n")
        with pytest.raises(RelationError, match=r"pairs\.txt:2.*two ids"):
            read_join_result(path)

    def test_non_integer_id_raises_relation_error(self, tmp_path):
        """Regression: this used to escape as a raw ValueError."""
        path = tmp_path / "pairs.txt"
        path.write_text("1 x\n")
        with pytest.raises(RelationError, match=r"pairs\.txt:1.*non-integer"):
            read_join_result(path)

    def test_skip_and_collect_modes(self, tmp_path):
        path = tmp_path / "pairs.txt"
        path.write_text("1 2\nbad\n3 4\n")
        assert read_join_result(path, on_error="skip") == [(1, 2), (3, 4)]
        pairs, report = read_join_result(path, on_error="collect")
        assert pairs == [(1, 2), (3, 4)]
        assert [bad.lineno for bad in report.skipped] == [2]


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------

element_sets = st.frozensets(st.integers(min_value=0, max_value=500), max_size=8)


@settings(max_examples=40, deadline=None)
@given(sets=st.lists(element_sets, max_size=12))
def test_set_per_line_roundtrip(tmp_path_factory, sets):
    path = tmp_path_factory.mktemp("io") / "rel.txt"
    rel = Relation.from_sets(sets)
    write_relation(rel, path)
    assert read_relation(path) == rel


@settings(max_examples=40, deadline=None)
@given(mapping=st.dictionaries(st.integers(min_value=0, max_value=10_000),
                               element_sets, max_size=12))
def test_id_prefixed_roundtrip(tmp_path_factory, mapping):
    path = tmp_path_factory.mktemp("io") / "rel.txt"
    rel = Relation.from_mapping(mapping)
    write_relation_with_ids(rel, path)
    back = read_relation_with_ids(path)
    assert {rec.rid: rec.elements for rec in back} == mapping


@settings(max_examples=40, deadline=None)
@given(pairs=st.sets(st.tuples(st.integers(min_value=-50, max_value=50),
                               st.integers(min_value=-50, max_value=50)),
                     max_size=20))
def test_join_result_roundtrip(tmp_path_factory, pairs):
    path = tmp_path_factory.mktemp("io") / "pairs.txt"
    write_join_result(pairs, path)
    assert read_join_result(path) == sorted(pairs)


@settings(max_examples=25, deadline=None)
@given(sets=st.lists(element_sets, min_size=1, max_size=10),
       junk=st.sampled_from(["definitely not numbers", "1 2 x", "-1 3", "nan"]))
def test_lenient_read_recovers_all_good_lines(tmp_path_factory, sets, junk):
    """Corrupting any one line never costs more than that line."""
    path = tmp_path_factory.mktemp("io") / "rel.txt"
    rel = Relation.from_sets(sets)
    write_relation(rel, path)
    lines = path.read_text().splitlines()
    lines.insert(len(lines) // 2, junk)
    path.write_text("\n".join(lines) + "\n")
    recovered, report = read_relation(path, on_error="collect")
    assert len(recovered) == len(sets)
    assert len(report.skipped) == 1
    assert {rec.elements for rec in recovered} == {rec.elements for rec in rel}
