"""Unit tests for the Sec. III-E extension joins and the reusable index."""

from __future__ import annotations

import pytest

from repro.errors import AlgorithmError
from repro.extensions.equality import equality_join, equality_join_on_index
from repro.extensions.set_index import PatriciaSetIndex
from repro.extensions.similarity import similarity_join, similarity_join_on_index
from repro.extensions.superset import superset_join, superset_join_on_index
from repro.relations.relation import Relation
from tests.conftest import random_relation


def superset_oracle(r, s):
    return {(rr.rid, ss.rid) for rr in r for ss in s if rr.elements <= ss.elements}


def equality_oracle(r, s):
    return {(rr.rid, ss.rid) for rr in r for ss in s if rr.elements == ss.elements}


def similarity_oracle(r, s, k):
    return {(rr.rid, ss.rid) for rr in r for ss in s
            if len(rr.elements ^ ss.elements) <= k}


class TestSupersetJoin:
    def test_matches_oracle(self):
        r = random_relation(70, 5, 40, seed=300)
        s = random_relation(70, 9, 40, seed=301)
        assert superset_join(r, s).pair_set() == superset_oracle(r, s)

    def test_empty_query_set_matches_all(self):
        r = Relation.from_sets([set()])
        s = Relation.from_sets([{1}, set(), {2, 3}])
        assert superset_join(r, s).pair_set() == {(0, 0), (0, 1), (0, 2)}

    def test_is_transpose_of_containment(self):
        from repro.core.ptsj import PTSJ

        r = random_relation(50, 6, 30, seed=302)
        s = random_relation(50, 6, 30, seed=303)
        sup = superset_join(r, s).pair_set()
        cont = PTSJ().join(s, r).pair_set()  # S >= R
        assert sup == {(b, a) for a, b in cont}

    def test_explicit_bits(self):
        r = random_relation(30, 5, 20, seed=304)
        s = random_relation(30, 5, 20, seed=305)
        result = superset_join(r, s, bits=64)
        assert result.stats.signature_bits == 64
        assert result.pair_set() == superset_oracle(r, s)


class TestEqualityJoin:
    def test_matches_oracle(self):
        r = random_relation(80, 4, 10, seed=306)   # small domain -> collisions
        s = random_relation(80, 4, 10, seed=307)
        assert equality_join(r, s).pair_set() == equality_oracle(r, s)

    def test_duplicates_grouped(self):
        r = Relation.from_sets([{1, 2}])
        s = Relation.from_sets([{1, 2}, {1, 2}, {3}])
        assert equality_join(r, s).pair_set() == {(0, 0), (0, 1)}

    def test_empty_sets_equal(self):
        r = Relation.from_sets([set()])
        s = Relation.from_sets([set(), {1}])
        assert equality_join(r, s).pair_set() == {(0, 0)}

    def test_signature_collision_not_confused(self):
        """Different sets with identical signatures (like u2/u3 in Table I)
        must not be reported as equal."""
        r = Relation.from_sets([{0, 2, 7}])          # {a, c, h}
        s = Relation.from_sets([{0, 2, 3}])          # {a, c, d}: same 4-bit sig
        assert equality_join(r, s, bits=4).pair_set() == set()


class TestSimilarityJoin:
    @pytest.mark.parametrize("k", [0, 1, 3])
    def test_matches_oracle(self, k):
        r = random_relation(50, 6, 25, seed=308)
        s = random_relation(50, 6, 25, seed=309)
        assert similarity_join(r, s, k).pair_set() == similarity_oracle(r, s, k)

    def test_threshold_zero_is_equality(self):
        r = random_relation(60, 4, 12, seed=310)
        s = random_relation(60, 4, 12, seed=311)
        assert similarity_join(r, s, 0).pair_set() == equality_oracle(r, s)

    def test_negative_threshold_rejected(self):
        r = Relation.from_sets([{1}])
        with pytest.raises(AlgorithmError):
            similarity_join(r, r, -1)

    def test_monotone_in_threshold(self):
        r = random_relation(40, 5, 20, seed=312)
        s = random_relation(40, 5, 20, seed=313)
        previous: set = set()
        for k in (0, 1, 2, 4):
            current = similarity_join(r, s, k).pair_set()
            assert previous <= current
            previous = current


class TestIndexReuse:
    """The paper's OLAP argument: one index, many query types."""

    def test_one_index_serves_all_joins(self):
        r = random_relation(60, 6, 30, seed=314)
        s = random_relation(60, 6, 30, seed=315)
        index = PatriciaSetIndex(s)
        assert superset_join_on_index(r, index).pair_set() == superset_oracle(r, s)
        assert equality_join_on_index(r, index).pair_set() == equality_oracle(r, s)
        assert similarity_join_on_index(r, index, 2).pair_set() == similarity_oracle(r, s, 2)

    def test_index_over_empty_relation_needs_bits(self):
        with pytest.raises(AlgorithmError):
            PatriciaSetIndex(Relation([]))

    def test_index_over_empty_relation_with_bits(self):
        index = PatriciaSetIndex(Relation([]), bits=16)
        assert list(index.subsets_of(frozenset({1}))) == []

    def test_subsets_probe(self):
        s = Relation.from_sets([{1}, {1, 2}, {3}])
        index = PatriciaSetIndex(s)
        found = {id_ for g in index.subsets_of(frozenset({1, 2})) for id_ in g.ids}
        assert found == {0, 1}

    def test_within_hamming_reports_set_distance(self):
        s = Relation.from_sets([{1, 2}, {1, 2, 3, 4}])
        index = PatriciaSetIndex(s)
        results = dict()
        for group, dist in index.within_hamming(frozenset({1, 2, 3}), 2):
            results[group.ids[0]] = dist
        assert results == {0: 1, 1: 1}

    def test_bits_property(self):
        index = PatriciaSetIndex(Relation.from_sets([{1}]), bits=40)
        assert index.bits == 40
        assert len(index) == 1


class TestDynamicIndexMaintenance:
    """Sec. III-E index reuse implies a maintainable index: add/discard."""

    def test_add_then_query(self):
        s = Relation.from_sets([{1, 2}])
        index = PatriciaSetIndex(s)
        index.add(99, frozenset({1}))
        found = {id_ for g in index.subsets_of(frozenset({1, 2})) for id_ in g.ids}
        assert found == {0, 99}
        assert len(index) == 2

    def test_add_duplicate_set_merges(self):
        s = Relation.from_sets([{1, 2}])
        index = PatriciaSetIndex(s)
        index.add(5, frozenset({1, 2}))
        groups = list(index.equal_to(frozenset({1, 2})))
        assert len(groups) == 1
        assert sorted(groups[0].ids) == [0, 5]

    def test_discard_removes_tuple(self):
        s = Relation.from_sets([{1, 2}, {3}])
        index = PatriciaSetIndex(s)
        assert index.discard(0, frozenset({1, 2}))
        assert list(index.equal_to(frozenset({1, 2}))) == []
        assert len(index) == 1
        index.trie.check_invariants()

    def test_discard_unknown_returns_false(self):
        s = Relation.from_sets([{1, 2}])
        index = PatriciaSetIndex(s)
        assert not index.discard(9, frozenset({1, 2}))
        assert not index.discard(0, frozenset({7}))
        assert len(index) == 1

    def test_discard_one_of_group(self):
        s = Relation.from_sets([{4, 5}, {4, 5}])
        index = PatriciaSetIndex(s)
        assert index.discard(0, frozenset({4, 5}))
        groups = list(index.equal_to(frozenset({4, 5})))
        assert groups and groups[0].ids == [1]

    def test_add_discard_roundtrip_preserves_queries(self):
        rng = __import__("random").Random(910)
        sets = [frozenset(rng.sample(range(40), rng.randint(1, 6))) for _ in range(60)]
        index = PatriciaSetIndex(Relation.from_sets(sets[:30]))
        for i, elements in enumerate(sets[30:], start=30):
            index.add(i, elements)
        for i in range(0, 60, 2):
            assert index.discard(i, sets[i])
        index.trie.check_invariants()
        alive = {i: sets[i] for i in range(60) if i % 2 == 1}
        query = frozenset(range(0, 40, 2))
        found = {id_ for g in index.subsets_of(query) for id_ in g.ids}
        expected = {i for i, s in alive.items() if s <= query}
        assert found == expected


class TestJaccardJoin:
    def jaccard_oracle(self, r, s, t):
        out = set()
        for rr in r:
            for ss in s:
                union = len(rr.elements | ss.elements)
                j = (len(rr.elements & ss.elements) / union) if union else 1.0
                if j >= t:
                    out.add((rr.rid, ss.rid))
        return out

    @pytest.mark.parametrize("threshold", [0.3, 0.5, 0.8, 1.0])
    def test_matches_oracle(self, threshold):
        from repro.extensions.similarity import jaccard_join

        r = random_relation(50, 8, 25, seed=316)
        s = random_relation(50, 8, 25, seed=317)
        got = jaccard_join(r, s, threshold).pair_set()
        assert got == self.jaccard_oracle(r, s, threshold)

    def test_threshold_one_is_equality(self):
        from repro.extensions.similarity import jaccard_join

        r = random_relation(60, 4, 10, seed=318)
        s = random_relation(60, 4, 10, seed=319)
        got = jaccard_join(r, s, 1.0).pair_set()
        assert got == equality_oracle(r, s)

    def test_empty_sets_similar_only_to_empty(self):
        from repro.extensions.similarity import jaccard_join

        r = Relation.from_sets([set(), {1}])
        s = Relation.from_sets([set(), {2}])
        assert jaccard_join(r, s, 0.5).pair_set() == {(0, 0)}

    def test_invalid_threshold(self):
        from repro.extensions.similarity import jaccard_join

        r = Relation.from_sets([{1}])
        with pytest.raises(AlgorithmError):
            jaccard_join(r, r, 0.0)
        with pytest.raises(AlgorithmError):
            jaccard_join(r, r, 1.5)

    def test_monotone_in_threshold(self):
        from repro.extensions.similarity import jaccard_join

        r = random_relation(40, 6, 20, seed=320)
        s = random_relation(40, 6, 20, seed=321)
        loose = jaccard_join(r, s, 0.3).pair_set()
        tight = jaccard_join(r, s, 0.8).pair_set()
        assert tight <= loose

    def test_reuses_index(self):
        from repro.extensions.similarity import jaccard_join_on_index

        s = random_relation(40, 6, 20, seed=322)
        r = random_relation(40, 6, 20, seed=323)
        index = PatriciaSetIndex(s)
        got = jaccard_join_on_index(r, index, 0.6).pair_set()
        assert got == self.jaccard_oracle(r, s, 0.6)
