"""Tests for the independent join-result validator."""

from __future__ import annotations

import pytest

from repro.core.registry import set_containment_join
from repro.core.validation import verify_join_result
from repro.relations.relation import Relation
from tests.conftest import random_relation


class TestVerifyJoinResult:
    def test_accepts_correct_output(self, small_pair):
        r, s = small_pair
        result = set_containment_join(r, s, algorithm="ptsj")
        report = verify_join_result(r, s, result.pairs)
        assert report.ok
        assert report.checked_pairs == len(result.pair_set())
        report.raise_on_failure()

    def test_detects_false_positive(self):
        r = Relation.from_sets([{1}])
        s = Relation.from_sets([{2}])
        report = verify_join_result(r, s, [(0, 0)])
        assert not report.ok
        assert report.false_positives == ((0, 0),)
        with pytest.raises(AssertionError, match="false"):
            report.raise_on_failure()

    def test_detects_missing_pair_exhaustively(self):
        r = Relation.from_sets([{1, 2}])
        s = Relation.from_sets([{1}])
        report = verify_join_result(r, s, [])
        assert not report.ok
        assert report.missing_pairs == ((0, 0),)

    def test_sampled_mode_on_large_inputs(self):
        r = random_relation(120, 6, 40, seed=900)
        s = random_relation(120, 4, 40, seed=901)
        result = set_containment_join(r, s, algorithm="pretti+")
        report = verify_join_result(r, s, result.pairs, sample=500, seed=2)
        assert report.ok
        assert report.checked_candidates == 500

    def test_sampled_mode_finds_planted_omission(self):
        r = random_relation(80, 6, 30, seed=902)
        s = random_relation(80, 4, 30, seed=903)
        result = set_containment_join(r, s, algorithm="ptsj")
        pairs = result.sorted_pairs()
        assert pairs, "test needs a non-empty join"
        # Drop one pair; with an exhaustive check it must be reported.
        report = verify_join_result(r, s, pairs[1:], sample=None)
        assert not report.ok
        assert pairs[0] in report.missing_pairs

    def test_empty_everything_is_ok(self):
        empty = Relation([])
        report = verify_join_result(empty, empty, [])
        assert report.ok
        assert report.checked_candidates == 0
