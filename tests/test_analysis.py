"""Tests for the repro.analysis lint engine and its rule catalog.

Every RPRxxx rule is covered by a bad/good fixture pair under
``tests/analysis_fixtures/``: the bad twin must fire the rule (with the
expected number of violations), the good twin must stay silent.  The
engine-level contracts — noqa suppression accounting, layer scoping,
module-name derivation, CLI exit codes, and the shipped tree being clean —
are tested directly on top of :func:`repro.analysis.engine.lint_source`.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    LintReport,
    lint_paths,
    lint_source,
    main as lint_main,
    module_name_for,
)
from repro.analysis.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "analysis_fixtures"
SRC = Path(__file__).parent.parent / "src"

#: rule id -> (fixture stem, module the fixture poses as, bad-twin count).
RULE_FIXTURES = {
    "RPR001": ("rpr001", "repro.core.fixture", 3),
    "RPR002": ("rpr002", "repro.future.fixture", 4),
    "RPR003": ("rpr003", "repro.core.fixture", 5),
    "RPR004": ("rpr004", "repro.core.fixture", 4),
    "RPR005": ("rpr005", "repro.core.fixture", 1),
    "RPR006": ("rpr006", "repro.core.fixture", 3),
    "RPR007": ("rpr007", "repro.core.fixture", 3),
    "RPR008": ("rpr008", "repro.core.fixture", 1),
    "RPR009": ("rpr009", "repro.core.fixture", 3),
    "RPR010": ("rpr010", "repro.core.fixture", 3),
    "RPR011": ("rpr011", "repro.serve.fixture", 3),
    "RPR012": ("rpr012", "repro.obs.fixture", 3),
    "RPR013": ("rpr013", "repro.serve.fixture", 3),
    "RPR014": ("rpr014", "repro.core.fixture", 4),
}


def _fixture(stem: str) -> str:
    return (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# Rule catalog
# ----------------------------------------------------------------------
def test_every_rule_has_a_fixture_pair():
    assert {r.id for r in ALL_RULES} == set(RULE_FIXTURES)
    for stem, _, _ in RULE_FIXTURES.values():
        assert (FIXTURES / f"{stem}_bad.py").exists()
        assert (FIXTURES / f"{stem}_good.py").exists()


def test_rules_are_well_formed():
    ids = [r.id for r in ALL_RULES]
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))
    for rule in ALL_RULES:
        assert rule.title and rule.rationale and rule.fixit


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_fires_on_bad_fixture(rule_id):
    stem, module, expected = RULE_FIXTURES[rule_id]
    report = lint_source(
        _fixture(f"{stem}_bad"),
        path=f"{stem}_bad.py",
        module=module,
        select=[rule_id],
    )
    assert len(report.violations) == expected
    assert {v.rule_id for v in report.violations} == {rule_id}
    for v in report.violations:
        assert v.line > 0 and v.message and v.fixit


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_silent_on_good_fixture(rule_id):
    stem, module, _ = RULE_FIXTURES[rule_id]
    report = lint_source(
        _fixture(f"{stem}_good"),
        path=f"{stem}_good.py",
        module=module,
        select=[rule_id],
    )
    assert report.violations == []


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_good_fixtures_fully_clean(rule_id):
    stem, module, _ = RULE_FIXTURES[rule_id]
    report = lint_source(
        _fixture(f"{stem}_good"), path=f"{stem}_good.py", module=module
    )
    assert report.violations == []
    assert report.clean


# ----------------------------------------------------------------------
# Layer scoping
# ----------------------------------------------------------------------
def test_clock_rule_allows_the_obs_layer():
    report = lint_source(
        _fixture("rpr001_bad"), module="repro.obs.fixture", select=["RPR001"]
    )
    assert report.violations == []


def test_pickle_rule_scoped_to_executor_layers():
    report = lint_source(
        _fixture("rpr002_bad"), module="repro.core.fixture", select=["RPR002"]
    )
    assert report.violations == []


def test_pickle_rule_covers_exec_package():
    # PR 6 moved the executors to repro.exec; the rule follows them (and
    # keeps watching the repro.future shims).
    report = lint_source(
        _fixture("rpr002_exec_bad"),
        path="rpr002_exec_bad.py",
        module="repro.exec.fixture",
        select=["RPR002"],
    )
    assert len(report.violations) == 4
    assert {v.rule_id for v in report.violations} == {"RPR002"}


def test_pickle_rule_exec_good_twin_is_clean():
    report = lint_source(
        _fixture("rpr002_exec_good"),
        path="rpr002_exec_good.py",
        module="repro.exec.fixture",
    )
    assert report.violations == []
    assert report.clean


def test_immutability_rule_allows_planner_plan_itself():
    report = lint_source(
        _fixture("rpr003_bad"), module="repro.planner.plan", select=["RPR003"]
    )
    assert report.violations == []


def test_determinism_rule_allows_datagen_and_testing():
    for module in ("repro.datagen.fixture", "repro.testing.fixture"):
        report = lint_source(
            _fixture("rpr006_bad"), module=module, select=["RPR006"]
        )
        assert report.violations == []


def test_unknown_module_gets_the_conservative_treatment():
    # A path outside any repro tree can't claim an allowed layer, so the
    # layer-scoped bans apply.
    report = lint_source(
        _fixture("rpr001_bad"), path="/tmp/adhoc_script.py", select=["RPR001"]
    )
    assert len(report.violations) == 3


# ----------------------------------------------------------------------
# Module-name derivation
# ----------------------------------------------------------------------
def test_module_name_for():
    assert module_name_for("src/repro/core/base.py") == "repro.core.base"
    assert module_name_for("/root/repo/src/repro/obs/clock.py") == "repro.obs.clock"
    assert module_name_for("src/repro/__init__.py") == "repro"
    assert module_name_for("scripts/tool.py") is None
    assert module_name_for("src/repro/data.txt") is None


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
BAD_LINE = "import random  # repro: noqa RPR006 seeded Random(seed) below\n"


def test_explained_noqa_suppresses_and_is_counted():
    report = lint_source(BAD_LINE, module="repro.core.fixture")
    assert report.violations == []
    assert len(report.suppressed) == 1
    violation, suppression = report.suppressed[0]
    assert violation.rule_id == "RPR006"
    assert suppression.explained
    assert suppression.reason == "seeded Random(seed) below"
    assert report.clean


def test_unexplained_noqa_fails_the_run():
    report = lint_source(
        "import random  # repro: noqa RPR006\n", module="repro.core.fixture"
    )
    assert report.violations == []
    assert len(report.unexplained) == 1
    assert not report.clean
    aggregate = LintReport(files=[report])
    assert aggregate.exit_code == 1


def test_noqa_for_a_different_rule_does_not_suppress():
    report = lint_source(
        "import random  # repro: noqa RPR001 wrong id\n",
        module="repro.core.fixture",
    )
    assert [v.rule_id for v in report.violations] == ["RPR006"]


def test_blanket_noqa_covers_every_rule():
    report = lint_source(
        "import random  # repro: noqa migration shim, remove with PR 6\n",
        module="repro.core.fixture",
    )
    assert report.violations == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0][1].rule_ids == ()


def test_multi_id_noqa_reason_trails_the_last_id():
    source = (
        "import time\n"
        "t = time.time(); import random"
        "  # repro: noqa RPR001 RPR006 one line, two waivers\n"
    )
    report = lint_source(source, module="repro.core.fixture")
    # Line 1's import-free clock read... line 2 carries both violations.
    suppressed_ids = {v.rule_id for v, _ in report.suppressed}
    assert {"RPR001", "RPR006"} <= suppressed_ids
    assert all(s.reason == "one line, two waivers" for _, s in report.suppressed)


def test_syntax_error_reports_rpr000():
    report = lint_source("def broken(:\n")
    assert [v.rule_id for v in report.violations] == ["RPR000"]


# ----------------------------------------------------------------------
# The shipped tree
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean():
    report = lint_paths([str(SRC)])
    assert report.violations == [], "\n".join(
        v.render() for v in report.violations
    )
    assert report.unexplained == []
    assert report.exit_code == 0
    # Every suppression that ships carries a reason.
    for suppression in report.suppressions:
        assert suppression.explained, suppression.render()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_nonzero_on_seeded_violation(tmp_path):
    bad = tmp_path / "seeded.py"
    bad.write_text("import time\nSTART = time.perf_counter()\n")
    out = io.StringIO()
    assert lint_main([str(bad)], out=out) == 1
    assert "RPR001" in out.getvalue()
    assert "fix:" in out.getvalue()


def test_cli_zero_on_clean_file(tmp_path):
    good = tmp_path / "clean.py"
    good.write_text("VALUE = 1\n")
    out = io.StringIO()
    assert lint_main([str(good)], out=out) == 0
    assert "0 violation(s)" in out.getvalue()


def test_cli_list_rules():
    out = io.StringIO()
    assert lint_main(["--list-rules"], out=out) == 0
    text = out.getvalue()
    for rule in ALL_RULES:
        assert rule.id in text


def test_cli_select_unknown_rule_is_usage_error(tmp_path):
    good = tmp_path / "clean.py"
    good.write_text("VALUE = 1\n")
    assert lint_main(["--select", "RPR123", str(good)], out=io.StringIO()) == 2


def test_cli_missing_path_is_usage_error():
    assert lint_main(["no/such/path.txt"], out=io.StringIO()) == 2


def test_cli_json_format(tmp_path):
    bad = tmp_path / "seeded.py"
    bad.write_text(
        "import time\n"
        "START = time.perf_counter()\n"
        "import random  # repro: noqa RPR006 fixture waiver\n"
    )
    out = io.StringIO()
    assert lint_main(["--format", "json", str(bad)], out=out) == 1
    payload = json.loads(out.getvalue())
    assert payload["exit_code"] == 1
    assert payload["statistics"] == {"RPR001": 1}
    assert payload["suppressed"][0]["rule"] == "RPR006"
    assert payload["files"] == 1


def test_repro_scj_lint_subcommand(tmp_path, capsys):
    from repro.cli import main as cli_main

    bad = tmp_path / "seeded.py"
    bad.write_text("import time\nSTART = time.monotonic()\n")
    assert cli_main(["lint", str(bad)]) == 1
    assert "RPR001" in capsys.readouterr().out
    good = tmp_path / "clean.py"
    good.write_text("VALUE = 1\n")
    assert cli_main(["lint", str(good)]) == 0


def test_statistics_flag_prints_per_rule_counts():
    out = io.StringIO()
    bad = FIXTURES / "rpr001_bad.py"
    # Fixture paths carry no repro component, so RPR001 applies.
    assert lint_main(["--statistics", str(bad)], out=out) == 1
    assert "RPR001" in out.getvalue()
