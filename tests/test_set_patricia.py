"""Unit tests for the element-space Patricia trie (PRETTI+, Algorithm 8)."""

from __future__ import annotations

import random

import pytest

from repro.errors import TrieError
from repro.tries.set_patricia import SetPatriciaTrie
from repro.tries.set_trie import SetTrie


def build(sets: list[tuple[int, ...]]) -> SetPatriciaTrie:
    trie = SetPatriciaTrie()
    for i, s in enumerate(sets):
        trie.insert(s, rid=i)
    return trie


class TestInsertCases:
    def test_single_set_one_node(self):
        """A lone set collapses to one node below the root."""
        trie = build([(1, 3, 5)])
        assert trie.node_count() == 2
        assert trie.root.children[1].prefix == (1, 3, 5)

    def test_case1_set_ends_at_existing_node(self):
        trie = build([(1, 2, 3), (1, 2, 3)])
        node = trie.root.children[1]
        assert node.tuples == [0, 1]
        assert len(trie) == 2

    def test_case2_descend_into_child(self):
        trie = build([(1, 2), (1, 2, 3, 4)])
        parent = trie.root.children[1]
        assert parent.prefix == (1, 2)
        assert parent.children[3].prefix == (3, 4)
        assert parent.children[3].tuples == [1]

    def test_case3_split_new_parent_holds_tuple(self):
        """Inserting a strict prefix of an existing run splits the node and
        the new common node holds the new tuple."""
        trie = build([(1, 2, 3, 4), (1, 2)])
        common = trie.root.children[1]
        assert common.prefix == (1, 2)
        assert common.tuples == [1]
        assert common.children[3].prefix == (3, 4)
        assert common.children[3].tuples == [0]

    def test_case4_split_with_sibling(self):
        """Diverging mid-run creates a common parent plus a sibling leaf."""
        trie = build([(1, 2, 3), (1, 2, 5)])
        common = trie.root.children[1]
        assert common.prefix == (1, 2)
        assert common.tuples == []
        assert common.children[3].prefix == (3,)
        assert common.children[5].prefix == (5,)

    def test_paper_figure4(self):
        """Fig. 4: inserting {b,d}, {b,f,g}, {a,c,h} gives nodes
        [ach], [b] -> [d], [fg]."""
        # a..h -> 0..7; p1={b,d}=(1,3), p2={b,f,g}=(1,5,6), p3={a,c,h}=(0,2,7)
        trie = build([(1, 3), (1, 5, 6), (0, 2, 7)])
        assert trie.root.children[0].prefix == (0, 2, 7)   # ach
        b_node = trie.root.children[1]
        assert b_node.prefix == (1,)
        assert b_node.children[3].prefix == (3,)           # d
        assert b_node.children[5].prefix == (5, 6)         # fg
        assert trie.node_count() == 5                       # root + 4

    def test_empty_set_at_root(self):
        trie = build([()])
        assert trie.root.tuples == [0]

    def test_non_ascending_rejected(self):
        with pytest.raises(TrieError):
            SetPatriciaTrie().insert((2, 1), rid=0)
        with pytest.raises(TrieError):
            SetPatriciaTrie().insert((1, 1), rid=0)


class TestCompression:
    def test_fewer_nodes_than_plain_trie(self):
        """The whole point of PRETTI+: collapsed chains (Fig. 6a memory)."""
        rng = random.Random(50)
        sets = [tuple(sorted(rng.sample(range(1000), 20))) for _ in range(100)]
        patricia = build(sets)
        plain = SetTrie()
        for i, s in enumerate(sets):
            plain.insert(s, rid=i)
        assert patricia.node_count() < plain.node_count() / 3

    def test_node_count_bounded(self):
        """A Patricia trie over k sets has at most 2k + 1 nodes."""
        rng = random.Random(51)
        sets = [tuple(sorted(rng.sample(range(200), rng.randint(0, 12)))) for _ in range(300)]
        trie = build(sets)
        assert trie.node_count() <= 2 * len(sets) + 1

    def test_invariants_random(self):
        rng = random.Random(52)
        sets = [tuple(sorted(rng.sample(range(60), rng.randint(0, 10)))) for _ in range(400)]
        trie = build(sets)
        trie.check_invariants()

    def test_stored_sets_roundtrip(self):
        rng = random.Random(53)
        sets = [tuple(sorted(rng.sample(range(80), rng.randint(0, 8)))) for _ in range(200)]
        trie = build(sets)
        trie.check_invariants()
        recovered: dict[tuple[int, ...], list[int]] = {}
        for elements, rids in trie.stored_sets():
            recovered[elements] = sorted(rids)
        expected: dict[tuple[int, ...], list[int]] = {}
        for i, s in enumerate(sets):
            expected.setdefault(s, []).append(i)
        assert recovered == expected

    def test_height_bounded_by_set_trie_height(self):
        rng = random.Random(54)
        sets = [tuple(sorted(rng.sample(range(100), 15))) for _ in range(50)]
        patricia = build(sets)
        plain = SetTrie()
        for i, s in enumerate(sets):
            plain.insert(s, rid=i)
        assert patricia.height() <= plain.height()

    def test_walk_reconstructs_full_paths(self):
        trie = build([(1, 2, 3), (1, 2, 5), (1, 2)])
        paths = {path for node, path in trie.walk() if node.tuples}
        assert paths == {(1, 2, 3), (1, 2, 5), (1, 2)}
