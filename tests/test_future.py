"""Unit tests for the future-work implementations (paper Sec. VI)."""

from __future__ import annotations

import pytest

from repro.core.registry import make_algorithm
from repro.errors import AlgorithmError, TrieError
from repro.future.multiway import MWTSJ, MultiwayTrie
from repro.future import ParallelJoin, parallel_join
from repro.future.trie_trie import TrieTrieJoin
from repro.relations.relation import Relation
from tests.conftest import TABLE1_EXPECTED, oracle_pairs, random_relation
from tests.test_patricia_trie import brute_subsets, random_signatures


class TestMultiwayTrie:
    def test_invalid_width(self):
        with pytest.raises(TrieError):
            MultiwayTrie(0)

    def test_insert_and_len(self):
        trie = MultiwayTrie(16)
        trie.insert(0x0F0F).append("x")
        trie.insert(0x0F0F).append("y")
        trie.insert(0x1111).append("z")
        assert len(trie) == 2

    def test_non_multiple_of_four_width(self):
        trie = MultiwayTrie(10)
        trie.insert(0b1010101010).append(1)
        found = trie.subset_leaves(0b1111111111)
        assert [leaf.signature for leaf in found] == [0b1010101010]

    @pytest.mark.parametrize("density", [0.2, 0.5])
    def test_subset_matches_brute_force(self, density):
        bits = 32
        sigs = random_signatures(120, bits, density, seed=600)
        trie = MultiwayTrie(bits)
        for sig in sigs:
            trie.insert(sig)
        for query in random_signatures(40, bits, density, seed=601):
            found = {leaf.signature for leaf in trie.subset_leaves(query)}
            assert found == brute_subsets(sigs, query)

    def test_empty_trie(self):
        trie = MultiwayTrie(8)
        assert trie.subset_leaves(0xFF) == []

    def test_zero_query(self):
        trie = MultiwayTrie(8)
        trie.insert(0)
        trie.insert(0b1)
        found = {leaf.signature for leaf in trie.subset_leaves(0)}
        assert found == {0}

    def test_shallower_than_binary_trie(self):
        assert MultiwayTrie(64).levels == 16


class TestMWTSJ:
    def test_table1(self, table1_profiles, table1_preferences):
        assert MWTSJ().join(table1_profiles, table1_preferences).pair_set() == TABLE1_EXPECTED

    def test_matches_oracle(self, small_pair):
        r, s = small_pair
        assert MWTSJ().join(r, s).pair_set() == oracle_pairs(r, s)

    def test_matches_ptsj_output(self, small_pair):
        from repro.core.ptsj import PTSJ

        r, s = small_pair
        assert MWTSJ(bits=64).join(r, s).pair_set() == PTSJ(bits=64).join(r, s).pair_set()

    def test_registered(self):
        assert make_algorithm("mwtsj").name == "mwtsj"

    def test_empty_relations(self):
        empty = Relation([])
        other = Relation.from_sets([{1}])
        assert len(MWTSJ(bits=8).join(empty, other)) == 0
        assert len(MWTSJ(bits=8).join(other, empty)) == 0


class TestTrieTrieJoin:
    def test_table1(self, table1_profiles, table1_preferences):
        result = TrieTrieJoin().join(table1_profiles, table1_preferences)
        assert result.pair_set() == TABLE1_EXPECTED

    def test_matches_oracle(self, small_pair):
        r, s = small_pair
        assert TrieTrieJoin().join(r, s).pair_set() == oracle_pairs(r, s)

    @pytest.mark.parametrize("bits", [16, 48])
    def test_explicit_bits(self, bits, small_pair):
        r, s = small_pair
        result = TrieTrieJoin(bits=bits).join(r, s)
        assert result.stats.signature_bits == bits
        assert result.pair_set() == oracle_pairs(r, s)

    def test_self_join(self):
        rel = random_relation(60, 6, 40, seed=602)
        assert TrieTrieJoin().join(rel, rel).pair_set() == oracle_pairs(rel, rel)

    def test_duplicates_grouped_on_both_sides(self):
        r = Relation.from_sets([{1, 2}] * 3)
        s = Relation.from_sets([{1}] * 2)
        result = TrieTrieJoin().join(r, s)
        assert len(result) == 6

    def test_empty_relations(self):
        empty = Relation([])
        other = Relation.from_sets([{1}])
        assert len(TrieTrieJoin(bits=8).join(empty, other)) == 0
        assert len(TrieTrieJoin(bits=8).join(other, empty)) == 0

    def test_registered(self):
        assert make_algorithm("trie-trie").name == "trie-trie"

    def test_shared_prefixes_amortised(self):
        """Node-pair visits stay far below |R-leaves| x |S-leaves|."""
        r = random_relation(150, 5, 30, seed=603)
        s = random_relation(150, 5, 30, seed=604)
        result = TrieTrieJoin(bits=64).join(r, s)
        assert result.stats.node_visits < len(r) * len(s)


class TestParallelJoin:
    def test_invalid_configuration(self):
        with pytest.raises(AlgorithmError):
            ParallelJoin(workers=0)
        with pytest.raises(AlgorithmError):
            ParallelJoin(chunks=0)

    def test_single_worker_matches_oracle(self, small_pair):
        r, s = small_pair
        result = ParallelJoin(workers=1, chunks=3).join(r, s)
        assert result.pair_set() == oracle_pairs(r, s)
        assert result.stats.extras["chunks"] == 3

    def test_multi_worker_matches_oracle(self):
        r = random_relation(80, 6, 40, seed=605)
        s = random_relation(80, 4, 40, seed=606)
        result = parallel_join(r, s, workers=2)
        assert result.pair_set() == oracle_pairs(r, s)

    def test_any_inner_algorithm(self, small_pair):
        r, s = small_pair
        result = ParallelJoin(algorithm="pretti+", workers=1, chunks=4).join(r, s)
        assert result.pair_set() == oracle_pairs(r, s)
        assert result.stats.algorithm == "parallel-pretti+"

    def test_empty_probe_relation(self):
        s = Relation.from_sets([{1}])
        result = ParallelJoin(workers=1).join(Relation([]), s)
        assert len(result) == 0


class TestParallelBuildOnce:
    """The S-index is prepared exactly once, however many chunks/workers."""

    def test_index_prepared_once_across_chunks(self, small_pair, monkeypatch):
        from repro.core.ptsj import PTSJ

        calls = {"n": 0}
        original = PTSJ._prepare

        def counting(self, s, probe_hint=None):
            calls["n"] += 1
            return original(self, s, probe_hint)

        monkeypatch.setattr(PTSJ, "_prepare", counting)
        r, s = small_pair
        result = ParallelJoin(algorithm="ptsj", workers=1, chunks=4).join(r, s)
        assert calls["n"] == 1
        assert result.stats.extras["index_builds"] == 1
        assert result.pair_set() == oracle_pairs(r, s)

    def test_multi_worker_reports_single_build(self):
        r = random_relation(40, 6, 40, seed=607)
        s = random_relation(40, 4, 40, seed=608)
        result = ParallelJoin(algorithm="ptsj", workers=2).join(r, s)
        assert result.stats.extras["index_builds"] == 1
        assert result.pair_set() == oracle_pairs(r, s)

    def test_build_time_not_multiplied_by_chunks(self, small_pair):
        """Aggregated build time equals the one prepare, not a per-chunk sum."""
        r, s = small_pair
        join = ParallelJoin(algorithm="ptsj", workers=1, chunks=4)
        index = join.prepare(s, probe_hint=r)
        assert index.build_seconds > 0.0
        result = join.join(r, s)
        # probe_many never reports build time, so the only build in the
        # aggregate is the parent's single prepare.
        assert result.stats.build_seconds > 0.0
        assert result.stats.extras["chunks"] == 4

    def test_prepare_returns_shareable_index(self, small_pair):
        r, s = small_pair
        index = ParallelJoin(algorithm="pretti+", workers=1).prepare(s)
        assert index.probe_many(r).pair_set() == oracle_pairs(r, s)


class TestMultiwayIntrospection:
    def test_node_count_grows_with_inserts(self):
        trie = MultiwayTrie(32)
        baseline = trie.node_count()
        for sig in (0x1, 0x10, 0x100, 0x1000):
            trie.insert(sig)
        assert trie.node_count() > baseline

    def test_visits_recorded(self):
        trie = MultiwayTrie(16)
        for sig in (0x0F0F, 0x00FF, 0xF000):
            trie.insert(sig)
        trie.subset_leaves(0xFFFF)
        assert trie.visits_last_query > 0

    def test_dense_node_uses_submask_table(self):
        """A node with many children triggers the submask-probe path."""
        trie = MultiwayTrie(4)
        for value in range(16):
            trie.insert(value)
        found = {leaf.signature for leaf in trie.subset_leaves(0b0111)}
        assert found == {v for v in range(16) if v & ~0b0111 == 0}


class TestParallelChunking:
    def test_more_chunks_than_tuples(self):
        r = Relation.from_sets([{1}, {2}])
        s = Relation.from_sets([{1}])
        result = ParallelJoin(workers=1, chunks=10).join(r, s)
        assert result.pair_set() == {(0, 0)}

    def test_stats_aggregated_across_chunks(self, small_pair):
        r, s = small_pair
        solo = ParallelJoin(workers=1, chunks=1).join(r, s)
        quad = ParallelJoin(workers=1, chunks=4).join(r, s)
        assert quad.stats.extras["chunks"] == 4
        # Chunked probes verify at most as many candidates in total per
        # chunk boundary effects, but output identically.
        assert quad.pair_set() == solo.pair_set()
