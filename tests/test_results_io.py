"""Unit tests for benchmark-series persistence."""

from __future__ import annotations

import pytest

from repro.bench.results_io import (
    load_series_csv,
    load_series_json,
    save_series_csv,
    save_series_json,
)
from repro.errors import ReproError

BUNDLE = {
    "fig6c": {
        "c=2^2": {"ptsj": 0.093, "pretti+": 0.021},
        "c=2^8": {"ptsj": 1.02, "pretti+": 5.85},
    },
    "fig6a": {"c=2^4": {"pretti": 3900.0}},
}


class TestJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "series.json"
        save_series_json(BUNDLE, path, units={"fig6a": "bytes"})
        figures, units = load_series_json(path)
        assert figures == BUNDLE
        assert units == {"fig6a": "bytes"}

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_series_json(tmp_path / "nope.json")

    def test_bad_version(self, tmp_path):
        path = tmp_path / "series.json"
        path.write_text('{"version": 99, "figures": {}}')
        with pytest.raises(ReproError):
            load_series_json(path)

    def test_not_json(self, tmp_path):
        path = tmp_path / "series.json"
        path.write_text("not json at all")
        with pytest.raises(ReproError):
            load_series_json(path)


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "series.csv"
        save_series_csv(BUNDLE, path)
        assert load_series_csv(path) == BUNDLE

    def test_header_enforced(self, tmp_path):
        path = tmp_path / "series.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(ReproError):
            load_series_csv(path)

    def test_column_count_enforced(self, tmp_path):
        path = tmp_path / "series.csv"
        path.write_text("figure,label,algorithm,value\nfig,x\n")
        with pytest.raises(ReproError):
            load_series_csv(path)

    def test_numeric_values_enforced(self, tmp_path):
        path = tmp_path / "series.csv"
        path.write_text("figure,label,algorithm,value\nfig,x,a,fast\n")
        with pytest.raises(ReproError):
            load_series_csv(path)

    def test_float_precision_preserved(self, tmp_path):
        bundle = {"f": {"x": {"a": 0.1234567890123456}}}
        path = tmp_path / "series.csv"
        save_series_csv(bundle, path)
        assert load_series_csv(path) == bundle
