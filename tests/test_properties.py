"""Property-based tests (Hypothesis) for core invariants.

These encode the paper's formal guarantees:

* signature soundness: ``A ⊆ B  ⇒  sig(A) ⊑ sig(B)`` (Sec. II-A);
* Patricia trie enumerations equal brute-force scans (Alg. 5/6/7);
* Patricia structural invariants survive arbitrary insertion orders;
* PRETTI+ Algorithm 8 stores exactly the inserted sets;
* every join algorithm equals the nested-loop oracle on arbitrary inputs;
* the extension joins' set semantics.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.nested_loop import nested_loop_join_pairs
from repro.core.registry import set_containment_join
from repro.extensions.equality import equality_join
from repro.extensions.similarity import similarity_join
from repro.extensions.superset import superset_join
from repro.index.inverted import intersect_sorted
from repro.relations.relation import Relation
from repro.signatures.bitmap import is_subset_sig
from repro.signatures.hashing import ModuloScheme, ScrambleScheme
from repro.tries.patricia import PatriciaTrie
from repro.tries.set_patricia import SetPatriciaTrie

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

element_sets = st.frozensets(st.integers(min_value=0, max_value=60), max_size=12)
set_lists = st.lists(element_sets, min_size=0, max_size=25)

BITS = 24
signatures = st.integers(min_value=0, max_value=(1 << BITS) - 1)
signature_lists = st.lists(signatures, min_size=0, max_size=40)


def relation_of(sets: list[frozenset[int]], start: int = 0) -> Relation:
    return Relation.from_sets(sets, start_id=start)


# ---------------------------------------------------------------------------
# Signature soundness
# ---------------------------------------------------------------------------


class TestSignatureSoundness:
    @given(small=element_sets, extra=element_sets, bits=st.integers(4, 128))
    def test_modulo_scheme_monotone(self, small, extra, bits):
        scheme = ModuloScheme(bits)
        big = small | extra
        assert is_subset_sig(scheme.signature(small), scheme.signature(big))

    @given(small=element_sets, extra=element_sets, bits=st.integers(4, 128))
    def test_scramble_scheme_monotone(self, small, extra, bits):
        scheme = ScrambleScheme(bits)
        big = small | extra
        assert is_subset_sig(scheme.signature(small), scheme.signature(big))

    @given(elements=element_sets, bits=st.integers(1, 64))
    def test_signature_fits_width(self, elements, bits):
        assert ModuloScheme(bits).signature(elements) >> bits == 0

    @given(elements=element_sets, bits=st.integers(4, 64))
    def test_popcount_bounded_by_cardinality(self, elements, bits):
        sig = ModuloScheme(bits).signature(elements)
        assert sig.bit_count() <= len(elements)


# ---------------------------------------------------------------------------
# Patricia trie over signatures
# ---------------------------------------------------------------------------


class TestPatriciaProperties:
    @given(sigs=signature_lists)
    def test_invariants_hold_after_any_insertion_order(self, sigs):
        trie = PatriciaTrie(BITS)
        for sig in sigs:
            trie.insert(sig)
        trie.check_invariants()
        assert len(trie) == len(set(sigs))
        if sigs:
            assert trie.node_count() <= 2 * len(trie) - 1

    @given(sigs=signature_lists, query=signatures)
    def test_subset_enum_equals_brute_force(self, sigs, query):
        trie = PatriciaTrie(BITS)
        for sig in sigs:
            trie.insert(sig)
        found = {leaf.signature for leaf in trie.subset_leaves(query)}
        assert found == {s for s in set(sigs) if s & ~query == 0}

    @given(sigs=signature_lists, query=signatures)
    def test_superset_enum_equals_brute_force(self, sigs, query):
        trie = PatriciaTrie(BITS)
        for sig in sigs:
            trie.insert(sig)
        found = {leaf.signature for leaf in trie.superset_leaves(query)}
        assert found == {s for s in set(sigs) if query & ~s == 0}

    @given(sigs=signature_lists, query=signatures, k=st.integers(0, BITS))
    def test_hamming_enum_equals_brute_force(self, sigs, query, k):
        trie = PatriciaTrie(BITS)
        for sig in sigs:
            trie.insert(sig)
        found = {leaf.signature for leaf, _ in trie.hamming_leaves(query, k)}
        assert found == {s for s in set(sigs) if (s ^ query).bit_count() <= k}

    @given(sigs=signature_lists)
    def test_equal_lookup_finds_all_inserted(self, sigs):
        trie = PatriciaTrie(BITS)
        for sig in sigs:
            trie.insert(sig)
        for sig in set(sigs):
            leaf = trie.equal_leaf(sig)
            assert leaf is not None and leaf.signature == sig


# ---------------------------------------------------------------------------
# PRETTI+ trie (Algorithm 8)
# ---------------------------------------------------------------------------


class TestSetPatriciaProperties:
    @given(sets=set_lists)
    def test_stores_exactly_the_inserted_sets(self, sets):
        trie = SetPatriciaTrie()
        for i, s in enumerate(sets):
            trie.insert(tuple(sorted(s)), rid=i)
        trie.check_invariants()
        stored: dict[tuple[int, ...], set[int]] = {}
        for elements, rids in trie.stored_sets():
            stored[elements] = set(rids)
        expected: dict[tuple[int, ...], set[int]] = {}
        for i, s in enumerate(sets):
            expected.setdefault(tuple(sorted(s)), set()).add(i)
        # Tuples with empty sets live at the root, which stored_sets also
        # reports (path () with rids).
        assert stored == expected

    @given(sets=set_lists)
    def test_node_count_bound(self, sets):
        trie = SetPatriciaTrie()
        for i, s in enumerate(sets):
            trie.insert(tuple(sorted(s)), rid=i)
        assert trie.node_count() <= 2 * max(len(sets), 1) + 1


# ---------------------------------------------------------------------------
# Sorted-list intersection
# ---------------------------------------------------------------------------


class TestIntersection:
    @given(
        a=st.lists(st.integers(0, 500), unique=True).map(sorted),
        b=st.lists(st.integers(0, 500), unique=True).map(sorted),
    )
    def test_equals_set_intersection(self, a, b):
        assert intersect_sorted(a, b) == sorted(set(a) & set(b))


# ---------------------------------------------------------------------------
# End-to-end joins
# ---------------------------------------------------------------------------


@st.composite
def relation_pairs(draw):
    r_sets = draw(st.lists(element_sets, min_size=0, max_size=18))
    s_sets = draw(st.lists(element_sets, min_size=0, max_size=18))
    return relation_of(r_sets), relation_of(s_sets)


class TestJoinProperties:
    @settings(max_examples=40, deadline=None)
    @given(pair=relation_pairs())
    def test_ptsj_equals_oracle(self, pair):
        r, s = pair
        got = set_containment_join(r, s, algorithm="ptsj").pair_set()
        assert got == set(nested_loop_join_pairs(r, s))

    @settings(max_examples=40, deadline=None)
    @given(pair=relation_pairs())
    def test_pretti_plus_equals_oracle(self, pair):
        r, s = pair
        got = set_containment_join(r, s, algorithm="pretti+").pair_set()
        assert got == set(nested_loop_join_pairs(r, s))

    @settings(max_examples=25, deadline=None)
    @given(pair=relation_pairs())
    def test_shj_equals_oracle(self, pair):
        r, s = pair
        got = set_containment_join(r, s, algorithm="shj").pair_set()
        assert got == set(nested_loop_join_pairs(r, s))

    @settings(max_examples=25, deadline=None)
    @given(pair=relation_pairs())
    def test_pretti_equals_oracle(self, pair):
        r, s = pair
        got = set_containment_join(r, s, algorithm="pretti").pair_set()
        assert got == set(nested_loop_join_pairs(r, s))

    @settings(max_examples=30, deadline=None)
    @given(pair=relation_pairs())
    def test_superset_join_semantics(self, pair):
        r, s = pair
        got = superset_join(r, s, bits=64).pair_set()
        assert got == {
            (rr.rid, ss.rid) for rr in r for ss in s if rr.elements <= ss.elements
        }

    @settings(max_examples=30, deadline=None)
    @given(pair=relation_pairs())
    def test_equality_join_semantics(self, pair):
        r, s = pair
        got = equality_join(r, s, bits=64).pair_set()
        assert got == {
            (rr.rid, ss.rid) for rr in r for ss in s if rr.elements == ss.elements
        }

    @settings(max_examples=25, deadline=None)
    @given(pair=relation_pairs(), k=st.integers(0, 6))
    def test_similarity_join_semantics(self, pair, k):
        r, s = pair
        got = similarity_join(r, s, k, bits=64).pair_set()
        assert got == {
            (rr.rid, ss.rid)
            for rr in r
            for ss in s
            if len(rr.elements ^ ss.elements) <= k
        }
