"""Unit tests for relation statistics (Table III columns)."""

from __future__ import annotations

from repro.relations.relation import Relation
from repro.relations.stats import compute_stats


class TestComputeStats:
    def test_basic_counts(self):
        rel = Relation.from_sets([{1, 2}, {3}, {1, 2, 3, 4}])
        st = compute_stats(rel)
        assert st.size == 3
        assert st.total_elements == 7
        assert st.avg_cardinality == 7 / 3
        assert st.median_cardinality == 2.0
        assert st.min_cardinality == 1
        assert st.max_cardinality == 4

    def test_domain_cardinality_counts_distinct(self):
        rel = Relation.from_sets([{1, 2}, {2, 3}])
        assert compute_stats(rel).domain_cardinality == 3

    def test_duplicate_sets_counted(self):
        rel = Relation.from_sets([{1, 2}, {1, 2}, {3}, {1, 2}])
        assert compute_stats(rel).duplicate_sets == 2

    def test_empty_relation_is_all_zero(self):
        st = compute_stats(Relation([]))
        assert st.size == 0
        assert st.avg_cardinality == 0.0
        assert st.domain_cardinality == 0

    def test_empty_sets_count_in_cardinality(self):
        rel = Relation.from_sets([set(), {1}])
        st = compute_stats(rel)
        assert st.min_cardinality == 0
        assert st.median_cardinality == 0.5

    def test_as_table_row_has_paper_columns(self):
        row = compute_stats(Relation.from_sets([{1, 2}])).as_table_row()
        assert set(row) == {"|R|", "c avg.", "c median", "d"}

    def test_recommended_low_cardinality_is_pretti_plus(self):
        rel = Relation.from_sets([{1, 2, 3}] * 5)
        assert compute_stats(rel).recommended_algorithm() == "pretti+"

    def test_recommended_high_cardinality_is_ptsj(self):
        rel = Relation.from_sets([set(range(100))] * 5)
        assert compute_stats(rel).recommended_algorithm() == "ptsj"

    def test_recommendation_uses_median_not_average(self):
        """Sec. V-C5: skewed cardinality -> decide on the median."""
        # One huge set inflates the average; the median stays small.
        sets = [{1, 2} for _ in range(9)] + [set(range(1000))]
        st = compute_stats(Relation.from_sets(sets))
        assert st.avg_cardinality > 32
        assert st.recommended_algorithm() == "pretti+"
