"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    AlgorithmError,
    DataGenError,
    ExternalMemoryError,
    RelationError,
    ReproError,
    SignatureError,
    TrieError,
)

ALL_ERRORS = [
    RelationError,
    SignatureError,
    TrieError,
    DataGenError,
    ExternalMemoryError,
    AlgorithmError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    assert issubclass(exc, Exception)


def test_catching_base_catches_all():
    for exc in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise exc("boom")


def test_library_raises_only_repro_errors_at_api_boundary():
    """A representative misuse of each subsystem yields a ReproError."""
    from repro.core.registry import make_algorithm
    from repro.datagen.synthetic import SyntheticConfig
    from repro.relations.relation import SetRecord
    from repro.signatures.bitmap import validate_signature
    from repro.tries.patricia import PatriciaTrie

    with pytest.raises(ReproError):
        SetRecord(0, frozenset({-5}))
    with pytest.raises(ReproError):
        validate_signature(-1, 8)
    with pytest.raises(ReproError):
        PatriciaTrie(0)
    with pytest.raises(ReproError):
        SyntheticConfig(size=1, avg_cardinality=0, domain=1)
    with pytest.raises(ReproError):
        make_algorithm("does-not-exist")
