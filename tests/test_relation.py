"""Unit tests for the relation data model."""

from __future__ import annotations

import pytest

from repro.errors import RelationError
from repro.relations.relation import Relation, SetRecord


class TestSetRecord:
    def test_elements_coerced_to_frozenset(self):
        rec = SetRecord(1, {3, 1, 2})  # type: ignore[arg-type]
        assert isinstance(rec.elements, frozenset)
        assert rec.elements == frozenset({1, 2, 3})

    def test_cardinality(self):
        assert SetRecord(0, frozenset({5, 9})).cardinality == 2

    def test_empty_set_allowed(self):
        assert SetRecord(0, frozenset()).cardinality == 0

    def test_sorted_elements(self):
        assert SetRecord(0, frozenset({9, 1, 5})).sorted_elements() == (1, 5, 9)

    def test_contains_superset(self):
        big = SetRecord(0, frozenset({1, 2, 3}))
        small = SetRecord(1, frozenset({2, 3}))
        assert big.contains(small)
        assert not small.contains(big)

    def test_contains_is_reflexive(self):
        rec = SetRecord(0, frozenset({4}))
        assert rec.contains(rec)

    def test_empty_set_contained_in_all(self):
        empty = SetRecord(0, frozenset())
        assert SetRecord(1, frozenset({1})).contains(empty)
        assert empty.contains(empty)

    def test_negative_element_rejected(self):
        with pytest.raises(RelationError):
            SetRecord(0, frozenset({-1, 2}))

    def test_non_int_element_rejected(self):
        with pytest.raises(RelationError):
            SetRecord(0, frozenset({"a"}))  # type: ignore[arg-type]

    def test_records_are_immutable(self):
        rec = SetRecord(0, frozenset({1}))
        with pytest.raises(AttributeError):
            rec.rid = 5  # type: ignore[misc]


class TestRelation:
    def test_from_sets_assigns_sequential_ids(self):
        rel = Relation.from_sets([{1}, {2}, {3}])
        assert rel.ids() == (0, 1, 2)

    def test_from_sets_start_id(self):
        rel = Relation.from_sets([{1}, {2}], start_id=10)
        assert rel.ids() == (10, 11)

    def test_from_mapping_preserves_ids(self):
        rel = Relation.from_mapping({7: {1}, 3: {2, 4}})
        assert set(rel.ids()) == {7, 3}
        assert rel.get(3).elements == frozenset({2, 4})

    def test_duplicate_ids_rejected(self):
        with pytest.raises(RelationError):
            Relation([SetRecord(1, frozenset()), SetRecord(1, frozenset({2}))])

    def test_len_iter_getitem(self):
        rel = Relation.from_sets([{1}, {2, 3}])
        assert len(rel) == 2
        assert [rec.cardinality for rec in rel] == [1, 2]
        assert rel[1].elements == frozenset({2, 3})

    def test_contains_checks_ids(self):
        rel = Relation.from_sets([{1}], start_id=5)
        assert 5 in rel
        assert 0 not in rel

    def test_get_missing_raises_keyerror(self):
        rel = Relation.from_sets([{1}])
        with pytest.raises(KeyError):
            rel.get(99)

    def test_equality_by_records(self):
        a = Relation.from_sets([{1}, {2}])
        b = Relation.from_sets([{1}, {2}])
        c = Relation.from_sets([{1}, {3}])
        assert a == b
        assert a != c

    def test_domain_is_union(self):
        rel = Relation.from_sets([{1, 2}, {2, 5}, set()])
        assert rel.domain() == frozenset({1, 2, 5})

    def test_max_element(self):
        rel = Relation.from_sets([{1, 9}, {3}])
        assert rel.max_element() == 9

    def test_max_element_all_empty(self):
        rel = Relation.from_sets([set(), set()])
        assert rel.max_element() == -1

    def test_empty_relation(self):
        rel = Relation([])
        assert len(rel) == 0
        assert rel.domain() == frozenset()

    def test_filter_cardinality_minimum(self):
        rel = Relation.from_sets([{1}, {1, 2}, {1, 2, 3}])
        kept = rel.filter_cardinality(minimum=2)
        assert [rec.cardinality for rec in kept] == [2, 3]

    def test_filter_cardinality_maximum(self):
        rel = Relation.from_sets([{1}, {1, 2}, {1, 2, 3}])
        kept = rel.filter_cardinality(maximum=2)
        assert [rec.cardinality for rec in kept] == [1, 2]

    def test_filter_preserves_ids(self):
        rel = Relation.from_sets([{1}, {1, 2}, {1, 2, 3}])
        kept = rel.filter_cardinality(minimum=3)
        assert kept.ids() == (2,)

    def test_sample_smaller_than_relation(self):
        rel = Relation.from_sets([{i} for i in range(50)])
        sampled = rel.sample(10, seed=3)
        assert len(sampled) == 10
        assert set(sampled.ids()) <= set(rel.ids())

    def test_sample_larger_returns_self(self):
        rel = Relation.from_sets([{1}, {2}])
        assert rel.sample(10) is rel

    def test_sample_deterministic(self):
        rel = Relation.from_sets([{i} for i in range(50)])
        assert rel.sample(5, seed=4).ids() == rel.sample(5, seed=4).ids()

    def test_repr_mentions_size(self):
        rel = Relation.from_sets([{1}], name="demo")
        assert "demo" in repr(rel)
        assert "1" in repr(rel)
