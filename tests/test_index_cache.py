"""Property-based tests for the serving cache and the relation fingerprint.

The :class:`~repro.serve.cache.IndexCache` is the join server's only
stateful policy, so it gets the model-checking treatment: hypothesis
drives random ``get``/``put``/clock-advance sequences against a plain
dict-plus-timestamps model and the two must agree on every lookup, the
LRU order, and the eviction count.  Time never sleeps — expiry is driven
entirely through the injected clock seam (the production default is
:func:`repro.obs.clock.monotonic`; here a counter stands in for it).

:meth:`Relation.fingerprint() <repro.relations.relation.Relation.fingerprint>`
is the cache key, so its contract is pinned here too: invariant under
record *insertion order* (the hash canonicalizes on rids), sensitive to
every kind of content change (element edits, record add/drop, rid
reassignment), and indifferent to presentation metadata (``name``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlgorithmError
from repro.obs.metrics import MetricsRegistry
from repro.relations.relation import Relation, SetRecord
from repro.serve.cache import IndexCache, index_key


class FakeClock:
    """A manually-advanced monotonic clock (the no-sleeps TTL seam)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Model-based cache checking
# ----------------------------------------------------------------------
KEYS = st.sampled_from([f"k{i}" for i in range(6)])

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("get"), KEYS),
        st.tuples(st.just("put"), KEYS),
        st.tuples(st.just("advance"), st.floats(min_value=0.25, max_value=3.0)),
        st.tuples(st.just("evict_expired"), st.none()),
    ),
    max_size=60,
)


class CacheModel:
    """The obvious reference implementation: dict + insertion timestamps."""

    def __init__(self, capacity: int, ttl: float | None, clock: FakeClock) -> None:
        self.capacity = capacity
        self.ttl = ttl
        self.clock = clock
        self.entries: OrderedDict[str, tuple[object, float]] = OrderedDict()
        self.evictions = 0
        self.expirations = 0

    def _expired(self, key: str) -> bool:
        _, expires_at = self.entries[key]
        return expires_at <= self.clock()

    def get(self, key: str) -> object | None:
        if key not in self.entries:
            return None
        if self._expired(key):
            del self.entries[key]
            self.expirations += 1
            return None
        self.entries.move_to_end(key)
        return self.entries[key][0]

    def put(self, key: str, value: object) -> None:
        if key in self.entries:
            del self.entries[key]
        expires_at = float("inf") if self.ttl is None else self.clock() + self.ttl
        self.entries[key] = (value, expires_at)
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
            self.evictions += 1

    def evict_expired(self) -> int:
        stale = [k for k in self.entries if self._expired(k)]
        for key in stale:
            del self.entries[key]
        self.expirations += len(stale)
        return len(stale)


@settings(max_examples=200, deadline=None)
@given(
    ops=OPS,
    capacity=st.integers(min_value=1, max_value=4),
    ttl=st.one_of(st.none(), st.floats(min_value=0.5, max_value=4.0)),
)
def test_cache_agrees_with_model(ops, capacity, ttl):
    """Random op sequences: cache and model agree on everything visible."""
    clock = FakeClock()
    registry = MetricsRegistry()
    cache = IndexCache(capacity, ttl_seconds=ttl, clock=clock, registry=registry)
    model = CacheModel(capacity, ttl, clock)
    counter = 0
    for op, arg in ops:
        if op == "get":
            assert cache.get(arg) == model.get(arg)
        elif op == "put":
            counter += 1
            cache.put(arg, counter)
            model.put(arg, counter)
        elif op == "advance":
            clock.advance(arg)
        else:
            assert cache.evict_expired() == model.evict_expired()
        # Invariants after every step:
        assert len(cache) <= capacity, "capacity bound violated"
        assert cache.keys() == tuple(model.entries), "LRU order diverged"
    snapshot = registry.snapshot()
    assert snapshot["cache.evictions"] == model.evictions
    assert snapshot["cache.expirations"] == model.expirations
    assert snapshot["cache.size"] == len(model.entries)
    assert snapshot["cache.hits"] + snapshot["cache.misses"] == sum(
        1 for op, _ in ops if op == "get"
    )


def test_ttl_expiry_without_sleeping():
    clock = FakeClock()
    cache = IndexCache(4, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(9.999)
    assert cache.get("a") == 1, "entry must survive until the TTL"
    clock.advance(0.001)
    assert cache.get("a") is None, "entry must expire exactly at the TTL"
    assert len(cache) == 0
    # Replacement resets the TTL from the write instant.
    cache.put("a", 2)
    clock.advance(9.0)
    cache.put("a", 3)
    clock.advance(9.0)
    assert cache.get("a") == 3


def test_lru_hit_refreshes_recency_but_not_ttl():
    clock = FakeClock()
    cache = IndexCache(2, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # a is now most recent
    cache.put("c", 3)  # evicts b, the least recently used
    assert cache.keys() == ("a", "c")
    clock.advance(10.0)
    assert cache.get("a") is None, "a hit must not extend the TTL"


def test_get_or_build_single_build_and_hit_accounting():
    registry = MetricsRegistry()
    cache = IndexCache(4, registry=registry)
    builds = []

    def builder():
        builds.append(1)
        return "value"

    value, hit = cache.get_or_build("k", builder)
    assert (value, hit) == ("value", False)
    value, hit = cache.get_or_build("k", builder)
    assert (value, hit) == ("value", True)
    assert len(builds) == 1
    assert cache.pending_builds() == (), "singleflight slot map must drain"
    snapshot = registry.snapshot()
    assert snapshot["cache.misses"] == 1.0, "singleflight must not double-count"
    assert snapshot["cache.hits"] == 1.0


def test_get_or_build_concurrent_misses_build_once():
    registry = MetricsRegistry()
    cache = IndexCache(4, registry=registry)
    builds = []
    gate = threading.Event()

    def builder():
        gate.wait(timeout=10)
        builds.append(1)
        return "value"

    results = []
    threads = [
        threading.Thread(target=lambda: results.append(cache.get_or_build("k", builder)))
        for _ in range(6)
    ]
    for t in threads:
        t.start()
    gate.set()
    for t in threads:
        t.join(timeout=30)
    assert len(builds) == 1, "concurrent misses on one key must coalesce"
    assert all(value == "value" for value, _ in results)
    assert sum(1 for _, hit in results if not hit) == 1
    assert cache.pending_builds() == (), "singleflight slot map must drain"


def test_failing_builder_installs_nothing_and_retries():
    cache = IndexCache(4)
    attempts = []

    def failing():
        attempts.append(1)
        raise AlgorithmError("boom")

    with pytest.raises(AlgorithmError):
        cache.get_or_build("k", failing)
    assert len(cache) == 0
    value, hit = cache.get_or_build("k", lambda: "ok")
    assert (value, hit) == ("ok", False)
    assert len(attempts) == 1
    assert cache.pending_builds() == (), (
        "a failed build must release its singleflight slot"
    )


def test_cache_rejects_bad_configuration():
    with pytest.raises(AlgorithmError):
        IndexCache(0)
    with pytest.raises(AlgorithmError):
        IndexCache(4, ttl_seconds=0.0)


# ----------------------------------------------------------------------
# Relation.fingerprint(): the cache-key contract
# ----------------------------------------------------------------------
RECORDS = st.dictionaries(
    keys=st.integers(min_value=0, max_value=50),
    values=st.frozensets(st.integers(min_value=0, max_value=30), max_size=6),
    min_size=1,
    max_size=12,
)


@settings(max_examples=150, deadline=None)
@given(records=RECORDS, seed=st.randoms(use_true_random=False))
def test_fingerprint_invariant_under_record_order(records, seed):
    items = [SetRecord(rid, elements) for rid, elements in records.items()]
    shuffled = list(items)
    seed.shuffle(shuffled)
    a = Relation(items, name="first")
    b = Relation(shuffled, name="second")  # name must not matter either
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint().startswith("rf1:")


@settings(max_examples=150, deadline=None)
@given(records=RECORDS, data=st.data())
def test_fingerprint_changes_with_content(records, data):
    base = Relation.from_mapping(records)
    rid = data.draw(st.sampled_from(sorted(records)))
    mutation = data.draw(st.sampled_from(["element", "drop", "reid"]))
    changed = dict(records)
    if mutation == "element":
        # Toggle one element in one record's set.
        element = data.draw(st.integers(min_value=0, max_value=31))
        changed[rid] = changed[rid] ^ {element}
    elif mutation == "drop":
        del changed[rid]
        if not changed:
            changed[rid + 100] = frozenset({0})
    else:
        new_rid = max(records) + 1 + data.draw(st.integers(min_value=0, max_value=5))
        changed[new_rid] = changed.pop(rid)
    assert Relation.from_mapping(changed).fingerprint() != base.fingerprint()


def test_fingerprint_is_memoized_and_stable():
    relation = Relation.from_sets([{1, 2}, {3}])
    first = relation.fingerprint()
    assert relation.fingerprint() is first  # memoized, not recomputed
    assert first == Relation.from_sets([{2, 1}, {3}]).fingerprint()


def test_index_key_separates_algorithm_and_bits():
    s = Relation.from_sets([{1, 2}, {3}])
    keys = {
        index_key(s, "ptsj"),
        index_key(s, "ptsj", bits=512),
        index_key(s, "ptsj", bits=1024),
        index_key(s, "pretti+"),
    }
    assert len(keys) == 4, "algorithm/bits must partition the key space"
    assert all(key.startswith(s.fingerprint()) for key in keys)
