"""Differential and fault-injection tests for :class:`repro.exec.sharded.ShardedJoin`.

The sharded executor's whole claim is *bit-for-bit* agreement with the
inline oracle: for every shard count, both partition strategies, and any
worker count or start method, the sorted pair list must equal the
sequential join's, and the merged counters must be reproducible.  The
tests here check that claim differentially (against
:func:`tests.conftest.oracle_pairs` and the inline executor), then drive
the resilience ladder — retry, pool restart after hard worker death,
exhaustion fallback, corrupt-shard rejection — with deterministic faults
from :mod:`repro.testing.faults`, asserting both correctness of the
recovered output *and* the degradation counters that make the recovery
observable.

Set ``REPRO_START_METHOD=fork|spawn`` to pin the pool start method (CI
runs this module once per method); one test also compares fork against
spawn directly, since shard placement and routing are pure functions of
record elements and must not depend on how workers are born.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core.base import JoinStats
from repro.errors import AlgorithmError, RetryExhaustedError, WorkerError
from repro.exec.inline import InlineJoin
from repro.exec.resilient import RetryPolicy
from repro.exec.sharded import (
    SHARD_EXTRAS,
    ShardedJoin,
    route_probe,
    shard_of,
    sharded_join,
    stable_signature_hash,
)
from repro.relations.relation import Relation, SetRecord
from repro.testing.faults import (
    CorruptingIndex,
    CrashingIndex,
    DyingIndex,
    FaultTrigger,
    IndexFault,
)
from tests.conftest import oracle_pairs, random_relation

#: Optional start-method override so CI can drill both fork and spawn.
START_METHOD = os.environ.get("REPRO_START_METHOD") or None

SHARD_COUNTS = (1, 2, 7)
STRATEGIES = ("element", "signature")

#: Counters that must merge identically however the shards ran.
COUNTER_FIELDS = ("candidates", "verifications", "node_visits", "intersections")


def make_join(**kwargs) -> ShardedJoin:
    kwargs.setdefault("algorithm", "ptsj")
    kwargs.setdefault("start_method", START_METHOD)
    return ShardedJoin(**kwargs)


@pytest.fixture(scope="module")
def rs_pair():
    # min_cardinality=0 keeps empty sets in play on both sides — the
    # element strategy's trickiest routing case.
    r = random_relation(50, 6, 35, seed=701)
    s = random_relation(50, 4, 35, seed=702)
    return r, s


@pytest.fixture(scope="module")
def expected(rs_pair):
    r, s = rs_pair
    return oracle_pairs(r, s)


@pytest.fixture(scope="module")
def inline_stats(rs_pair) -> JoinStats:
    r, s = rs_pair
    return InlineJoin(algorithm="ptsj").join(r, s).stats


# ----------------------------------------------------------------------
# Placement and routing (pure functions)
# ----------------------------------------------------------------------
class TestRouting:
    def test_signature_hash_is_order_independent_and_stable(self):
        a = stable_signature_hash(frozenset({3, 1, 4, 15}))
        b = stable_signature_hash(frozenset({15, 4, 1, 3}))
        assert a == b
        # Pinned value: placement must never drift between versions or
        # interpreters, or persisted shard layouts would silently break.
        assert stable_signature_hash(frozenset()) == 0
        assert stable_signature_hash(frozenset({0})) == 1000004

    def test_single_shard_takes_everything(self):
        rec = SetRecord(0, frozenset({9, 11}))
        assert shard_of(rec, 1, "element") == 0
        assert shard_of(rec, 1, "signature") == 0
        assert route_probe(rec, 1, "element", False) == [0]

    def test_empty_set_lives_in_shard_zero(self):
        empty = SetRecord(0, frozenset())
        for strategy in STRATEGIES:
            assert shard_of(empty, 5, strategy) in (range(5) if strategy == "signature" else (0,))
        assert shard_of(empty, 5, "element") == 0

    def test_element_probe_routes_to_residues(self):
        rec = SetRecord(0, frozenset({2, 5, 7}))
        assert route_probe(rec, 5, "element", s_has_empty=False) == [0, 2]
        # An empty set in S subsets every probe, so shard 0 joins in.
        assert route_probe(rec, 5, "element", s_has_empty=True) == [0, 2]
        assert route_probe(SetRecord(1, frozenset({1})), 5, "element", True) == [0, 1]

    def test_signature_probe_broadcasts(self):
        rec = SetRecord(0, frozenset({2}))
        assert route_probe(rec, 4, "signature", False) == [0, 1, 2, 3]

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_routing_is_complete(self, rs_pair, shards, strategy):
        # The correctness invariant behind the executor: every S-record a
        # probe could match lives in a shard that probe visits.
        r, s = rs_pair
        s_has_empty = any(not rec.elements for rec in s)
        for rr in r:
            visited = set(route_probe(rr, shards, strategy, s_has_empty))
            for ss in s:
                if ss.elements <= rr.elements:
                    assert shard_of(ss, shards, strategy) in visited

    def test_partition_is_disjoint_and_total(self, rs_pair):
        _, s = rs_pair
        for strategy in STRATEGIES:
            placed = [shard_of(rec, 7, strategy) for rec in s]
            assert all(0 <= p < 7 for p in placed)
            assert len(placed) == len(s)


# ----------------------------------------------------------------------
# Differential: sharded vs the inline oracle
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("workers", (1, 2))
    def test_pairs_match_oracle_bit_for_bit(
        self, rs_pair, expected, shards, strategy, workers
    ):
        r, s = rs_pair
        result = make_join(workers=workers, shards=shards, strategy=strategy).join(r, s)
        assert sorted(result.pairs) == sorted(expected)
        assert result.stats.pairs == len(result.pairs)
        assert result.stats.extras["shards"] == shards
        for key in SHARD_EXTRAS:
            assert result.stats.extras[key] == 0, key

    def test_single_shard_counters_equal_inline(self, rs_pair, inline_stats):
        # With one shard the whole of S is indexed once and probed in R
        # order, so the work counters must be *identical* to the inline
        # executor's, not merely close.
        r, s = rs_pair
        stats = make_join(workers=2, shards=1).join(r, s).stats
        for field in COUNTER_FIELDS + ("index_nodes", "signature_bits"):
            assert getattr(stats, field) == getattr(inline_stats, field), field

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_merged_counters_are_run_to_run_deterministic(self, rs_pair, strategy):
        r, s = rs_pair
        runs = [
            make_join(workers=2, shards=3, strategy=strategy).join(r, s) for _ in range(2)
        ]
        assert runs[0].pairs == runs[1].pairs  # same order, not just same set
        for field in COUNTER_FIELDS:
            assert getattr(runs[0].stats, field) == getattr(runs[1].stats, field)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_fork_and_spawn_agree(self, rs_pair, expected, shards):
        available = multiprocessing.get_all_start_methods()
        if not {"fork", "spawn"} <= set(available):
            pytest.skip("platform lacks fork or spawn")
        r, s = rs_pair
        outcomes = {}
        for method in ("fork", "spawn"):
            result = ShardedJoin(
                algorithm="ptsj", workers=2, shards=shards, start_method=method
            ).join(r, s)
            outcomes[method] = (
                result.pairs,
                {f: getattr(result.stats, f) for f in COUNTER_FIELDS},
            )
        assert outcomes["fork"] == outcomes["spawn"]
        assert sorted(outcomes["fork"][0]) == sorted(expected)

    def test_empty_sets_in_s_join_every_probe(self):
        r = Relation.from_sets([{1, 2}, {4}], name="R")
        s = Relation.from_sets([set(), {2}], name="S")
        for strategy in STRATEGIES:
            result = make_join(workers=1, shards=3, strategy=strategy).join(r, s)
            assert sorted(result.pairs) == sorted(oracle_pairs(r, s))

    def test_more_shards_than_workers_or_records(self, rs_pair, expected):
        r, s = rs_pair
        result = make_join(workers=2, shards=23).join(r, s)
        assert sorted(result.pairs) == sorted(expected)

    def test_algorithm_choice_is_orthogonal(self, rs_pair, expected):
        r, s = rs_pair
        result = make_join(algorithm="pretti+", workers=2, shards=3).join(r, s)
        assert sorted(result.pairs) == sorted(expected)
        assert result.stats.algorithm == "sharded-pretti+"


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(workers=0),
        dict(shards=0),
        dict(shards=-2),
        dict(strategy="modulo"),
        dict(timeout_seconds=0.0),
    ])
    def test_invalid_configuration(self, bad):
        with pytest.raises(AlgorithmError):
            ShardedJoin(**bad)

    def test_shards_default_to_workers(self):
        assert ShardedJoin(workers=3).shards == 3
        assert ShardedJoin(workers=2, shards=5).shards == 5


# ----------------------------------------------------------------------
# Shard loss: the resilience ladder
# ----------------------------------------------------------------------
class TestShardLoss:
    def test_crashed_shard_is_retried(self, rs_pair, expected, tmp_path):
        r, s = rs_pair
        fault = IndexFault(CrashingIndex, FaultTrigger(tmp_path, times=1))
        result = make_join(
            workers=2, shards=2, index_transform=fault,
            retry_policy=RetryPolicy(max_attempts=3),
        ).join(r, s)
        assert sorted(result.pairs) == sorted(expected)
        assert result.stats.extras["retries"] == 1
        assert result.stats.extras["fallback_shards"] == 0

    def test_dead_worker_restarts_the_pool(self, rs_pair, expected, tmp_path):
        r, s = rs_pair
        fault = IndexFault(DyingIndex, FaultTrigger(tmp_path, times=1))
        result = make_join(
            workers=2, shards=2, index_transform=fault,
            retry_policy=RetryPolicy(max_attempts=4),
        ).join(r, s)
        assert sorted(result.pairs) == sorted(expected)
        assert result.stats.extras["pool_restarts"] >= 1
        assert result.stats.extras["retries"] >= 1

    def test_index_fault_spares_the_parent(self, rs_pair, expected, tmp_path):
        # Exhaust retries with a persistent killer: every pooled attempt
        # dies, and the parent's in-process fallback must survive because
        # IndexFault pinned the parent pid at construction time — and the
        # fallback rebuilds without the transform anyway.
        r, s = rs_pair
        fault = IndexFault(DyingIndex, FaultTrigger(tmp_path, times=50))
        result = make_join(
            workers=2, shards=2, index_transform=fault,
            retry_policy=RetryPolicy(max_attempts=2),
        ).join(r, s)
        assert sorted(result.pairs) == sorted(expected)
        assert result.stats.extras["fallback_shards"] >= 1

    def test_exhausted_retries_fall_back_in_parent(self, rs_pair, expected, tmp_path):
        r, s = rs_pair
        fault = IndexFault(CrashingIndex, FaultTrigger(tmp_path, times=50))
        result = make_join(
            workers=2, shards=2, index_transform=fault,
            retry_policy=RetryPolicy(max_attempts=2),
        ).join(r, s)
        assert sorted(result.pairs) == sorted(expected)
        assert result.stats.extras["fallback_shards"] == 2
        assert result.stats.extras["retries"] == 2

    def test_no_fallback_raises_retry_exhausted(self, rs_pair, tmp_path):
        r, s = rs_pair
        fault = IndexFault(CrashingIndex, FaultTrigger(tmp_path, times=50))
        with pytest.raises(RetryExhaustedError):
            make_join(
                workers=2, shards=2, index_transform=fault, fallback=False,
                retry_policy=RetryPolicy(max_attempts=2),
            ).join(r, s)

    def test_corrupt_shard_is_rejected_and_retried(self, rs_pair, expected, tmp_path):
        r, s = rs_pair
        fault = IndexFault(
            CorruptingIndex, FaultTrigger(tmp_path, times=1), alien_id=10_000
        )
        result = make_join(
            workers=2, shards=2, index_transform=fault,
            retry_policy=RetryPolicy(max_attempts=3),
        ).join(r, s)
        assert sorted(result.pairs) == sorted(expected)
        assert result.stats.extras["corrupt_shards"] == 1
        assert result.stats.extras["retries"] == 1

    def test_validation_can_be_disabled(self, rs_pair, tmp_path):
        r, s = rs_pair
        fault = IndexFault(
            CorruptingIndex, FaultTrigger(tmp_path, times=1), alien_id=10_000
        )
        result = make_join(
            workers=2, shards=2, index_transform=fault, validate_results=False,
        ).join(r, s)
        alien = [(a, b) for a, b in result.pairs if a == 10_000]
        assert alien  # the lie went through, as configured
        assert result.stats.extras["corrupt_shards"] == 0

    def test_inline_workers_retry_too(self, rs_pair, expected, tmp_path):
        # workers=1 runs shards in-process; the retry ladder still applies.
        r, s = rs_pair
        fault = IndexFault(CrashingIndex, FaultTrigger(tmp_path, times=1))
        result = make_join(
            workers=1, shards=3, index_transform=fault,
            retry_policy=RetryPolicy(max_attempts=3),
        ).join(r, s)
        assert sorted(result.pairs) == sorted(expected)
        assert result.stats.extras["retries"] == 1


# ----------------------------------------------------------------------
# Helper
# ----------------------------------------------------------------------
def test_sharded_join_helper(rs_pair, expected):
    r, s = rs_pair
    result = sharded_join(r, s, workers=2, shards=2, start_method=START_METHOD)
    assert sorted(result.pairs) == sorted(expected)


def test_worker_error_message_names_the_shard(rs_pair, tmp_path):
    r, s = rs_pair
    join = make_join(workers=1, shards=2, validate_results=True)
    stats = JoinStats()
    tasks = join._make_tasks(r, s, stats)
    with pytest.raises(WorkerError, match="shard 0"):
        join._check_result(tasks[0], [(10_000, 10_000)], stats)
    assert stats.extras["corrupt_shards"] == 1
