"""Unit tests for the signature-space Patricia trie (Algorithms 5/6/7)."""

from __future__ import annotations

import random

import pytest

from repro.errors import SignatureError, TrieError
from repro.signatures.bitmap import bits_to_sig
from repro.tries.patricia import PatriciaTrie


def build(bits: int, signatures: list[int]) -> PatriciaTrie:
    trie = PatriciaTrie(bits)
    for i, sig in enumerate(signatures):
        trie.insert(sig).append(i)
    return trie


def brute_subsets(signatures: list[int], query: int) -> set[int]:
    return {sig for sig in signatures if sig & ~query == 0}


def brute_supersets(signatures: list[int], query: int) -> set[int]:
    return {sig for sig in signatures if query & ~sig == 0}


def random_signatures(count: int, bits: int, density: float, seed: int) -> list[int]:
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        sig = 0
        for pos in range(bits):
            if rng.random() < density:
                sig |= 1 << pos
        out.append(sig)
    return out


class TestConstruction:
    def test_invalid_width(self):
        with pytest.raises(TrieError):
            PatriciaTrie(0)

    def test_empty_trie(self):
        trie = PatriciaTrie(8)
        assert len(trie) == 0
        assert trie.node_count() == 0
        assert trie.subset_leaves(0xFF) == []
        assert trie.superset_leaves(0) == []
        assert trie.equal_leaf(0) is None

    def test_single_insert(self):
        trie = PatriciaTrie(8)
        items = trie.insert(0b10100000)
        items.append("payload")
        assert len(trie) == 1
        assert trie.node_count() == 1

    def test_duplicate_signature_shares_leaf(self):
        trie = PatriciaTrie(8)
        a = trie.insert(0b1)
        b = trie.insert(0b1)
        assert a is b
        assert len(trie) == 1

    def test_signature_too_wide_rejected(self):
        trie = PatriciaTrie(4)
        with pytest.raises(SignatureError):
            trie.insert(0b10000)

    def test_paper_figure3_structure(self):
        """Fig. 3: inserting 0101, 0110, 1011 yields 5 nodes (2 internal)."""
        sigs = [bits_to_sig(s) for s in ("0101", "0110", "1011")]
        trie = build(4, sigs)
        assert len(trie) == 3
        # 3 leaves + split at position 0 + split at position 2 = 5 nodes
        assert trie.node_count() == 5
        trie.check_invariants()

    def test_node_count_bounded_by_2k_minus_1(self):
        sigs = random_signatures(200, 64, 0.3, seed=1)
        trie = build(64, sigs)
        assert trie.node_count() <= 2 * len(trie) - 1

    def test_all_ones_and_zero(self):
        trie = PatriciaTrie(16)
        trie.insert(0).append("zero")
        trie.insert((1 << 16) - 1).append("ones")
        trie.check_invariants()
        assert len(trie) == 2

    def test_invariants_on_random_inserts(self):
        sigs = random_signatures(300, 48, 0.4, seed=2)
        trie = build(48, sigs)
        trie.check_invariants()
        assert len(trie) == len(set(sigs))

    def test_leaves_iterate_all_signatures(self):
        sigs = random_signatures(100, 32, 0.5, seed=3)
        trie = build(32, sigs)
        assert {leaf.signature for leaf in trie.leaves()} == set(sigs)

    def test_height_bounded_by_bits_plus_one(self):
        sigs = random_signatures(100, 24, 0.5, seed=4)
        trie = build(24, sigs)
        assert trie.height() <= 24 + 1


class TestSubsetEnumeration:
    def test_paper_example_query(self):
        """Querying u1 = 0111 on Fig. 3 returns p1 (0101) and p2 (0110)."""
        sigs = {"p1": bits_to_sig("0101"), "p2": bits_to_sig("0110"),
                "p3": bits_to_sig("1011")}
        trie = PatriciaTrie(4)
        for name, sig in sigs.items():
            trie.insert(sig).append(name)
        found = {item for leaf in trie.subset_leaves(bits_to_sig("0111"))
                 for item in leaf.items}
        assert found == {"p1", "p2"}

    def test_paper_visit_count(self):
        """Sec. III-B: the Fig. 3 query traverses 3 content nodes (vs 6 in
        the plain trie).  This implementation materialises the branch point
        at position 0 as an (empty-prefix) root node and counts it too,
        hence 4 = the paper's 3 + the synthetic root."""
        sigs = [bits_to_sig(s) for s in ("0101", "0110", "1011")]
        trie = build(4, sigs)
        trie.subset_leaves(bits_to_sig("0111"))
        assert trie.visits_last_query == 4

    @pytest.mark.parametrize("density", [0.1, 0.3, 0.6])
    @pytest.mark.parametrize("seed", [5, 6])
    def test_matches_brute_force(self, density, seed):
        bits = 40
        sigs = random_signatures(150, bits, density, seed=seed)
        trie = build(bits, sigs)
        queries = random_signatures(50, bits, density, seed=seed + 100)
        for query in queries:
            found = {leaf.signature for leaf in trie.subset_leaves(query)}
            assert found == brute_subsets(sigs, query)

    def test_all_ones_query_returns_everything(self):
        sigs = random_signatures(80, 24, 0.4, seed=7)
        trie = build(24, sigs)
        found = {leaf.signature for leaf in trie.subset_leaves((1 << 24) - 1)}
        assert found == set(sigs)

    def test_zero_query_returns_only_zero(self):
        sigs = random_signatures(80, 24, 0.4, seed=8) + [0]
        trie = build(24, sigs)
        found = {leaf.signature for leaf in trie.subset_leaves(0)}
        assert found == {0}

    def test_visits_bounded_by_node_count(self):
        sigs = random_signatures(100, 32, 0.5, seed=9)
        trie = build(32, sigs)
        trie.subset_leaves((1 << 32) - 1)
        assert trie.visits_last_query <= trie.node_count()


class TestSupersetEnumeration:
    @pytest.mark.parametrize("density", [0.2, 0.5])
    def test_matches_brute_force(self, density):
        bits = 36
        sigs = random_signatures(120, bits, density, seed=10)
        trie = build(bits, sigs)
        for query in random_signatures(40, bits, density / 2, seed=11):
            found = {leaf.signature for leaf in trie.superset_leaves(query)}
            assert found == brute_supersets(sigs, query)

    def test_zero_query_returns_everything(self):
        sigs = random_signatures(50, 16, 0.4, seed=12)
        trie = build(16, sigs)
        found = {leaf.signature for leaf in trie.superset_leaves(0)}
        assert found == set(sigs)

    def test_duality_with_subset(self):
        """sig in supersets(q) iff q in subsets(sig)."""
        bits = 20
        sigs = random_signatures(60, bits, 0.4, seed=13)
        trie = build(bits, sigs)
        query = sigs[0]
        sups = {leaf.signature for leaf in trie.superset_leaves(query)}
        for sig in set(sigs):
            assert (sig in sups) == (query & ~sig == 0)


class TestEqualLookup:
    def test_finds_exact(self):
        sigs = random_signatures(100, 32, 0.5, seed=14)
        trie = build(32, sigs)
        for sig in sigs[:20]:
            leaf = trie.equal_leaf(sig)
            assert leaf is not None and leaf.signature == sig

    def test_misses_absent(self):
        sigs = [s | 1 for s in random_signatures(50, 32, 0.5, seed=15)]
        trie = build(32, sigs)
        absent = [s & ~1 for s in sigs if s & ~1 not in set(sigs)]
        for sig in absent[:10]:
            assert trie.equal_leaf(sig) is None


class TestHammingEnumeration:
    def test_negative_threshold_rejected(self):
        trie = build(8, [0b1])
        with pytest.raises(TrieError):
            trie.hamming_leaves(0, -1)

    def test_zero_threshold_is_equality(self):
        sigs = random_signatures(60, 24, 0.4, seed=16)
        trie = build(24, sigs)
        for query in sigs[:10]:
            found = {leaf.signature for leaf, _ in trie.hamming_leaves(query, 0)}
            assert found == {query}

    @pytest.mark.parametrize("threshold", [1, 3, 6])
    def test_matches_brute_force(self, threshold):
        bits = 24
        sigs = random_signatures(120, bits, 0.5, seed=17)
        trie = build(bits, sigs)
        for query in random_signatures(25, bits, 0.5, seed=18):
            expected = {s for s in sigs if (s ^ query).bit_count() <= threshold}
            found = {leaf.signature for leaf, _ in trie.hamming_leaves(query, threshold)}
            assert found == expected

    def test_distances_reported_correctly(self):
        sigs = random_signatures(60, 20, 0.5, seed=19)
        trie = build(20, sigs)
        query = sigs[0]
        for leaf, dist in trie.hamming_leaves(query, 5):
            assert dist == (leaf.signature ^ query).bit_count()

    def test_wide_threshold_returns_everything(self):
        sigs = random_signatures(40, 16, 0.5, seed=20)
        trie = build(16, sigs)
        found = {leaf.signature for leaf, _ in trie.hamming_leaves(0, 16)}
        assert found == set(sigs)


class TestLargeSignatures:
    def test_thousands_of_bits(self):
        """Sec. III-D: PTSJ signatures can reach thousands of bits."""
        bits = 4096
        rng = random.Random(21)
        sigs = []
        for _ in range(50):
            sig = 0
            for _ in range(64):
                sig |= 1 << rng.randrange(bits)
            sigs.append(sig)
        trie = build(bits, sigs)
        trie.check_invariants()
        query = sigs[0] | sigs[1]
        found = {leaf.signature for leaf in trie.subset_leaves(query)}
        assert found == brute_subsets(sigs, query)
