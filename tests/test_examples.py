"""Smoke tests: every example script must run end to end.

Each example carries its own internal assertions (expected Table I output,
oracle cross-checks, validator reports), so a clean exit is a meaningful
check, not just an import test.  Scripts run in-process via ``runpy`` with
stdout captured.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLE_SCRIPTS) >= 3, "the deliverable requires >= 3 examples"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=[s.stem for s in EXAMPLE_SCRIPTS])
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_quickstart_prints_table1_result(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "matches the paper's Table I result" in out
