"""Unit tests for the PRETTI baseline (Algorithm 3)."""

from __future__ import annotations

from repro.baselines.pretti import PRETTI
from repro.relations.relation import Relation
from tests.conftest import TABLE1_EXPECTED, oracle_pairs, random_relation


class TestCorrectness:
    def test_table1_example(self, table1_profiles, table1_preferences):
        result = PRETTI().join(table1_profiles, table1_preferences)
        assert result.pair_set() == TABLE1_EXPECTED

    def test_matches_oracle_random(self, small_pair):
        r, s = small_pair
        assert PRETTI().join(r, s).pair_set() == oracle_pairs(r, s)

    def test_self_join(self):
        rel = random_relation(70, 8, 45, seed=100)
        assert PRETTI().join(rel, rel).pair_set() == oracle_pairs(rel, rel)

    def test_empty_relations(self):
        empty = Relation([])
        other = Relation.from_sets([{1}])
        assert len(PRETTI().join(empty, other)) == 0
        assert len(PRETTI().join(other, empty)) == 0

    def test_empty_s_sets_match_everything(self):
        r = Relation.from_sets([{1}, {2}])
        s = Relation.from_sets([set(), {9}])
        assert PRETTI().join(r, s).pair_set() == {(0, 0), (1, 0)}

    def test_prefix_reuse_example(self):
        """The Sec. II-B walk-through: results from node b flow to node d."""
        profiles = Relation.from_sets([{1, 3, 5, 6}, {0, 2, 7}, {0, 2, 3}])
        prefs = Relation.from_sets([{1, 3}, {1, 5, 6}, {0, 2, 7}])
        assert PRETTI().join(profiles, prefs).pair_set() == TABLE1_EXPECTED


class TestStats:
    def test_no_verifications(self, small_pair):
        r, s = small_pair
        stats = PRETTI().join(r, s).stats
        assert stats.verifications == 0

    def test_intersections_counted(self, small_pair):
        r, s = small_pair
        assert PRETTI().join(r, s).stats.intersections > 0

    def test_index_nodes_equals_trie_size(self):
        s = Relation.from_sets([{1, 2}, {1, 3}])
        stats = PRETTI().join(Relation.from_sets([{1, 2, 3}]), s).stats
        # root + 1 + 2 + 3 = 4 nodes
        assert stats.index_nodes == 4

    def test_node_visits_prune_empty_branches(self):
        """Branches whose candidate list empties are never visited."""
        r = Relation.from_sets([{1}])          # only element 1 present in R
        s = Relation.from_sets([{1}, {2, 3}, {2, 4}, {5, 6, 7}])
        stats = PRETTI().join(r, s).stats
        # Only the root and the '1' node are visited; subtrees under
        # 2 and 5 are pruned at the refine step.
        assert stats.node_visits == 2
