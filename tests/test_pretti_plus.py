"""Unit tests for PRETTI+ (the paper's second contribution)."""

from __future__ import annotations

import pytest

from repro.baselines.pretti import PRETTI
from repro.core.pretti_plus import PRETTIPlus
from repro.relations.relation import Relation
from tests.conftest import TABLE1_EXPECTED, oracle_pairs, random_relation


class TestCorrectness:
    def test_table1_example(self, table1_profiles, table1_preferences):
        result = PRETTIPlus().join(table1_profiles, table1_preferences)
        assert result.pair_set() == TABLE1_EXPECTED

    def test_matches_oracle_random(self, small_pair):
        r, s = small_pair
        assert PRETTIPlus().join(r, s).pair_set() == oracle_pairs(r, s)

    def test_self_join(self):
        rel = random_relation(80, 8, 50, seed=80)
        assert PRETTIPlus().join(rel, rel).pair_set() == oracle_pairs(rel, rel)

    def test_empty_relations(self):
        empty = Relation([])
        other = Relation.from_sets([{1}])
        assert len(PRETTIPlus().join(empty, other)) == 0
        assert len(PRETTIPlus().join(other, empty)) == 0

    def test_empty_sets_in_s_match_all_r(self):
        r = Relation.from_sets([{1}, {2, 3}, set()])
        s = Relation.from_sets([set()])
        result = PRETTIPlus().join(r, s)
        assert result.pair_set() == {(0, 0), (1, 0), (2, 0)}

    def test_duplicate_sets(self):
        r = Relation.from_sets([{5, 6, 7}])
        s = Relation.from_sets([{5, 6}, {5, 6}])
        assert PRETTIPlus().join(r, s).pair_set() == {(0, 0), (0, 1)}

    def test_matches_pretti_everywhere(self):
        """PRETTI+ is an optimisation of PRETTI, never a semantic change."""
        for seed in (81, 82, 83):
            r = random_relation(70, 9, 45, seed=seed)
            s = random_relation(70, 7, 45, seed=seed + 10)
            assert (
                PRETTIPlus().join(r, s).pair_set()
                == PRETTI().join(r, s).pair_set()
            )


class TestStatsAndStructure:
    def test_no_verifications_needed(self, small_pair):
        """IR-based joins are exact by construction (Sec. IV)."""
        r, s = small_pair
        stats = PRETTIPlus().join(r, s).stats
        assert stats.verifications == 0
        assert stats.precision == 1.0

    def test_fewer_index_nodes_than_pretti(self):
        """The Patricia compression (the point of PRETTI+)."""
        r = random_relation(40, 6, 30, seed=84)
        s = random_relation(200, 20, 400, seed=85, min_cardinality=10)
        plus_nodes = PRETTIPlus().join(r, s).stats.index_nodes
        plain_nodes = PRETTI().join(r, s).stats.index_nodes
        assert plus_nodes < plain_nodes / 2

    def test_fewer_node_visits_than_pretti(self):
        r = random_relation(60, 8, 60, seed=86)
        s = random_relation(150, 15, 300, seed=87, min_cardinality=8)
        plus = PRETTIPlus().join(r, s).stats
        plain = PRETTI().join(r, s).stats
        assert plus.node_visits < plain.node_visits

    def test_intersections_counted(self, small_pair):
        r, s = small_pair
        stats = PRETTIPlus().join(r, s).stats
        assert stats.intersections > 0

    def test_no_signature_machinery(self, small_pair):
        r, s = small_pair
        assert PRETTIPlus().join(r, s).stats.signature_bits == 0

    def test_built_trie_accessible(self, small_pair):
        r, s = small_pair
        algo = PRETTIPlus()
        algo.join(r, s)
        algo.built_trie().check_invariants()

    def test_built_trie_before_join_raises(self):
        with pytest.raises(RuntimeError):
            PRETTIPlus().built_trie()
