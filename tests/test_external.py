"""Unit tests for partitioning and the disk-based join (Sec. III-E4)."""

from __future__ import annotations

import pytest

from repro.errors import ExternalMemoryError
from repro.external import DiskPartitionedJoin, disk_partitioned_join
from repro.external.partition import SpilledRelation, partition_relation
from repro.relations.relation import Relation
from tests.conftest import oracle_pairs, random_relation


class TestPartitionRelation:
    def test_partition_sizes(self):
        rel = random_relation(25, 5, 30, seed=400)
        parts = partition_relation(rel, 10)
        assert [len(p) for p in parts] == [10, 10, 5]

    def test_ids_preserved(self):
        rel = random_relation(12, 5, 30, seed=401, start_id=100)
        parts = partition_relation(rel, 5)
        assert [rid for p in parts for rid in p.ids()] == list(rel.ids())

    def test_exact_multiple(self):
        rel = random_relation(20, 5, 30, seed=402)
        assert [len(p) for p in partition_relation(rel, 5)] == [5, 5, 5, 5]

    def test_empty_relation_one_empty_partition(self):
        parts = partition_relation(Relation([]), 10)
        assert len(parts) == 1 and len(parts[0]) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ExternalMemoryError):
            partition_relation(Relation([]), 0)


class TestSpilledRelation:
    def test_spill_and_reload(self, tmp_path):
        rel = random_relation(23, 6, 40, seed=403)
        spill = SpilledRelation(rel, tmp_path, max_tuples=10)
        assert len(spill) == 3
        reloaded = [rec for part in spill.iter_partitions() for rec in part]
        assert [(r.rid, r.elements) for r in reloaded] == [
            (r.rid, r.elements) for r in rel
        ]

    def test_reads_counted(self, tmp_path):
        rel = random_relation(10, 4, 20, seed=404)
        spill = SpilledRelation(rel, tmp_path, max_tuples=5)
        spill.load(0)
        spill.load(1)
        spill.load(0)
        assert spill.reads == 3

    def test_out_of_range_load(self, tmp_path):
        spill = SpilledRelation(random_relation(4, 3, 10, seed=405), tmp_path, 2)
        with pytest.raises(ExternalMemoryError):
            spill.load(9)

    def test_cleanup_removes_files(self, tmp_path):
        spill = SpilledRelation(random_relation(6, 3, 10, seed=406), tmp_path, 3)
        spill.cleanup()
        assert all(not p.exists() for p in spill.paths)
        spill.cleanup()  # idempotent


class TestDiskPartitionedJoin:
    def test_matches_in_memory_result(self):
        r = random_relation(50, 7, 40, seed=407)
        s = random_relation(50, 5, 40, seed=408)
        result = disk_partitioned_join(r, s, max_tuples=12)
        assert result.pair_set() == oracle_pairs(r, s)

    @pytest.mark.parametrize("algorithm", ["ptsj", "pretti+", "pretti", "shj"])
    def test_any_inner_algorithm(self, algorithm):
        r = random_relation(30, 6, 30, seed=409)
        s = random_relation(30, 4, 30, seed=410)
        result = disk_partitioned_join(r, s, algorithm=algorithm, max_tuples=8)
        assert result.pair_set() == oracle_pairs(r, s)
        assert result.stats.algorithm == f"disk-{algorithm}"

    def test_quadratic_partition_loads(self):
        """n_r x n_s pair joins -> n_s + n_r * n_s partition loads."""
        r = random_relation(40, 4, 30, seed=411)
        s = random_relation(40, 4, 30, seed=412)
        result = disk_partitioned_join(r, s, max_tuples=10)
        extras = result.stats.extras
        assert extras["r_partitions"] == 4 and extras["s_partitions"] == 4
        assert extras["partition_loads"] == 4 + 4 * 4

    def test_single_partition_degenerates_to_memory_join(self):
        r = random_relation(20, 4, 30, seed=413)
        s = random_relation(20, 4, 30, seed=414)
        result = disk_partitioned_join(r, s, max_tuples=1000)
        assert result.stats.extras["partition_loads"] == 1 + 1
        assert result.pair_set() == oracle_pairs(r, s)

    def test_explicit_workdir(self, tmp_path):
        r = random_relation(10, 4, 20, seed=415)
        s = random_relation(10, 4, 20, seed=416)
        join = DiskPartitionedJoin(max_tuples=4, workdir=tmp_path)
        assert join.join(r, s).pair_set() == oracle_pairs(r, s)

    def test_invalid_capacity(self):
        with pytest.raises(ExternalMemoryError):
            DiskPartitionedJoin(max_tuples=0)

    def test_algorithm_kwargs_forwarded(self):
        r = random_relation(15, 4, 20, seed=417)
        s = random_relation(15, 4, 20, seed=418)
        result = disk_partitioned_join(r, s, algorithm="ptsj", max_tuples=5, bits=32)
        assert result.stats.signature_bits == 32
