"""Unit tests for signature hash schemes."""

from __future__ import annotations

import pytest

from repro.errors import SignatureError
from repro.signatures.bitmap import is_subset_sig, sig_to_bits
from repro.signatures.hashing import ModuloScheme, ScrambleScheme, signature_of


class TestModuloScheme:
    def test_paper_table1_signatures(self):
        """Table I shows 4-bit signatures; with 1-based letters the paper
        gets u1={b,d,f,g} -> 0111.  Our 0-based encoding shifts by one but
        the containment structure is identical."""
        scheme = ModuloScheme(4)
        # b,d,f,g -> 1,3,5,6 (0-based); bits {1%4,3%4,5%4,6%4} = {1,3,1,2}
        sig = scheme.signature({1, 3, 5, 6})
        assert sig_to_bits(sig, 4) == "0111"

    def test_empty_set_is_zero(self):
        assert ModuloScheme(8).signature(frozenset()) == 0

    def test_signature_fits_width(self):
        scheme = ModuloScheme(16)
        sig = scheme.signature(range(1000))
        assert sig >> 16 == 0

    def test_bit_of_is_modulo(self):
        scheme = ModuloScheme(8)
        assert scheme.bit_of(0) == 0
        assert scheme.bit_of(8) == 0
        assert scheme.bit_of(13) == 5

    def test_same_bits_for_colliding_elements(self):
        scheme = ModuloScheme(4)
        assert scheme.signature({1}) == scheme.signature({5})

    def test_invalid_width_rejected(self):
        with pytest.raises(SignatureError):
            ModuloScheme(0)
        with pytest.raises(SignatureError):
            ModuloScheme(-3)

    def test_soundness_property(self):
        """t1.set <= t2.set implies sig(t1) contained in sig(t2)."""
        scheme = ModuloScheme(13)
        small = frozenset({2, 30, 77})
        big = small | {5, 9, 100}
        assert is_subset_sig(scheme.signature(small), scheme.signature(big))

    def test_equality_and_hash(self):
        assert ModuloScheme(8) == ModuloScheme(8)
        assert ModuloScheme(8) != ModuloScheme(9)
        assert ModuloScheme(8) != ScrambleScheme(8)
        assert hash(ModuloScheme(8)) == hash(ModuloScheme(8))


class TestScrambleScheme:
    def test_soundness_property(self):
        scheme = ScrambleScheme(64)
        small = frozenset({10, 20})
        big = small | {30}
        assert is_subset_sig(scheme.signature(small), scheme.signature(big))

    def test_deterministic(self):
        a = ScrambleScheme(32).signature({1, 2, 3})
        b = ScrambleScheme(32).signature({1, 2, 3})
        assert a == b

    def test_decorrelates_adjacent_elements(self):
        """Adjacent ints should not land on adjacent bits (unlike modulo)."""
        scheme = ScrambleScheme(256)
        positions = [scheme.bit_of(x) for x in range(16)]
        diffs = {abs(a - b) for a, b in zip(positions, positions[1:])}
        assert diffs != {1}

    def test_bit_in_range(self):
        scheme = ScrambleScheme(37)
        assert all(0 <= scheme.bit_of(x) < 37 for x in range(500))


class TestSignatureOf:
    def test_one_shot_matches_scheme(self):
        assert signature_of({1, 2}, 8) == ModuloScheme(8).signature({1, 2})

    def test_scheme_override(self):
        assert signature_of({1, 2}, 8, ScrambleScheme) == ScrambleScheme(8).signature({1, 2})


class TestScrambleUniformity:
    """Regression: a single multiply-xor-shift mix left the low bits of
    consecutive inputs correlated, collapsing power-of-two moduli onto a
    single value.  The full splitmix64 finalizer must spread them."""

    def test_power_of_two_width_spreads(self):
        scheme = ScrambleScheme(256)
        positions = {scheme.bit_of(e) for e in range(256)}
        assert len(positions) > 150

    def test_low_bits_not_constant(self):
        scheme = ScrambleScheme(8)
        assert len({scheme.bit_of(e) for e in range(64)}) == 8

    def test_pick_hash_spreads(self):
        from collections import Counter

        from repro.external.psj import _pick_hash

        counts = Counter(_pick_hash(e, 8) for e in range(400))
        assert len(counts) == 8
        assert max(counts.values()) < 3 * min(counts.values())
