"""Unit tests for the element-space set index (PRETTI+ side)."""

from __future__ import annotations

import random

import pytest

from repro.extensions.set_trie_index import SetTrieIndex
from repro.relations.relation import Relation
from tests.conftest import random_relation


def brute(rel, query, op):
    if op == "sub":
        return sorted(r.rid for r in rel if r.elements <= query)
    if op == "sup":
        return sorted(r.rid for r in rel if r.elements >= query)
    return sorted(r.rid for r in rel if r.elements == query)


class TestProbes:
    @pytest.fixture
    def relation(self):
        return random_relation(120, 6, 40, seed=940)

    def test_subsets(self, relation):
        index = SetTrieIndex(relation)
        rng = random.Random(941)
        for _ in range(20):
            query = frozenset(rng.sample(range(40), rng.randint(0, 14)))
            assert sorted(index.subsets_of(query)) == brute(relation, query, "sub")

    def test_supersets(self, relation):
        index = SetTrieIndex(relation)
        rng = random.Random(942)
        for _ in range(20):
            query = frozenset(rng.sample(range(40), rng.randint(0, 5)))
            assert sorted(index.supersets_of(query)) == brute(relation, query, "sup")

    def test_equal(self, relation):
        index = SetTrieIndex(relation)
        for rec in list(relation)[:25]:
            assert sorted(index.equal_to(rec.elements)) == brute(relation, rec.elements, "eq")

    def test_equal_misses(self, relation):
        index = SetTrieIndex(relation)
        assert index.equal_to(frozenset({997, 998, 999})) == []

    def test_empty_set_queries(self):
        rel = Relation.from_sets([set(), {1}, {1, 2}])
        index = SetTrieIndex(rel)
        assert sorted(index.subsets_of(frozenset())) == [0]
        assert sorted(index.supersets_of(frozenset())) == [0, 1, 2]
        assert index.equal_to(frozenset()) == [0]

    def test_agrees_with_signature_index(self, relation):
        """The two index families must answer identically."""
        from repro.extensions.set_index import PatriciaSetIndex

        signature_index = PatriciaSetIndex(relation)
        trie_index = SetTrieIndex(relation)
        rng = random.Random(943)
        for _ in range(15):
            query = frozenset(rng.sample(range(40), rng.randint(0, 10)))
            sig_subs = sorted(i for g in signature_index.subsets_of(query) for i in g.ids)
            assert sorted(trie_index.subsets_of(query)) == sig_subs
            sig_sups = sorted(i for g in signature_index.supersets_of(query) for i in g.ids)
            assert sorted(trie_index.supersets_of(query)) == sig_sups


class TestMaintenance:
    def test_add_then_probe(self):
        index = SetTrieIndex(Relation.from_sets([{1, 2}]))
        index.add(9, frozenset({1}))
        assert sorted(index.subsets_of(frozenset({1, 2}))) == [0, 9]
        assert len(index) == 2

    def test_discard(self):
        index = SetTrieIndex(Relation.from_sets([{1, 2}, {3}]))
        assert index.discard(0)
        assert index.subsets_of(frozenset({1, 2})) == []
        assert not index.discard(0)
        index.trie.check_invariants()

    def test_churn_matches_fresh_index(self):
        rng = random.Random(944)
        sets = [frozenset(rng.sample(range(30), rng.randint(0, 5))) for _ in range(80)]
        index = SetTrieIndex(Relation.from_sets(sets[:40]))
        for i, s in enumerate(sets[40:], start=40):
            index.add(i, s)
        for i in range(0, 80, 3):
            assert index.discard(i)
        survivors = {i: s for i, s in enumerate(sets) if i % 3 != 0}
        query = frozenset(range(0, 30, 2))
        assert sorted(index.subsets_of(query)) == sorted(
            i for i, s in survivors.items() if s <= query
        )
        index.trie.check_invariants()
