"""Unit tests for the Sec. III-D signature-length strategy."""

from __future__ import annotations

import pytest

from repro.errors import SignatureError
from repro.signatures.length import SignatureLengthStrategy, choose_signature_length


class TestChooseSignatureLength:
    def test_sweet_spot_ratio_16(self):
        """Default strategy gives b = (c/2) * 32 = 16c."""
        assert choose_signature_length(16, 2 ** 14) == 256
        assert choose_signature_length(64, 2 ** 20) == 1024

    def test_domain_upper_bound(self):
        """b <= d: at b = d the signature is an exact bitmap."""
        assert choose_signature_length(16, 100) == 100

    def test_word_cap(self):
        """b <= 256 * Int = 8192 bits."""
        assert choose_signature_length(10_000, 10 ** 9) == 8192

    def test_lower_bound_c(self):
        """b >= c (below c signatures saturate)."""
        strategy = SignatureLengthStrategy(ratio=0.001)
        b = strategy.choose(64, 2 ** 20)
        assert b >= 64

    def test_tiny_domain_wins_over_lower_bound(self):
        """If d < c the exact bitmap b = d is still the right answer."""
        assert choose_signature_length(50, 10) == 10

    def test_minimum_floor(self):
        assert choose_signature_length(1, 2 ** 20) >= 8

    def test_fractional_cardinality_accepted(self):
        assert choose_signature_length(5.36, 10 ** 6) > 0

    def test_invalid_inputs(self):
        with pytest.raises(SignatureError):
            choose_signature_length(0, 100)
        with pytest.raises(SignatureError):
            choose_signature_length(10, 0)

    def test_custom_word_size(self):
        """Int = 64 doubles the target length."""
        assert choose_signature_length(16, 2 ** 20, int_bits=64) == 512


class TestStrategyObject:
    def test_invalid_construction(self):
        with pytest.raises(SignatureError):
            SignatureLengthStrategy(int_bits=0)
        with pytest.raises(SignatureError):
            SignatureLengthStrategy(max_words=0)
        with pytest.raises(SignatureError):
            SignatureLengthStrategy(ratio=0)

    def test_ratio_parameterises_sweet_spot(self):
        low = SignatureLengthStrategy(ratio=0.5).choose(16, 2 ** 20)
        high = SignatureLengthStrategy(ratio=1.0).choose(16, 2 ** 20)
        assert high == 2 * low

    def test_monotone_in_cardinality(self):
        strategy = SignatureLengthStrategy()
        lengths = [strategy.choose(c, 2 ** 20) for c in (4, 8, 16, 32, 64)]
        assert lengths == sorted(lengths)

    def test_repr(self):
        assert "Int=32" in repr(SignatureLengthStrategy())
