"""Integration tests: all algorithms must agree across dataset regimes.

This is the repository's central correctness statement: PTSJ, PRETTI+,
SHJ, PRETTI and TSJ compute exactly the nested-loop oracle's output on
every data shape the paper's evaluation exercises (uniform, skewed,
duplicate-heavy, empty-set-bearing, low and high cardinality, surrogate
real-world shapes).
"""

from __future__ import annotations

import pytest

from repro.core.registry import set_containment_join
from repro.datagen.realworld import make_surrogate
from repro.datagen.synthetic import SyntheticConfig, generate_pair
from repro.relations.relation import Relation
from tests.conftest import oracle_pairs, random_relation

ALGORITHMS = ("ptsj", "pretti+", "shj", "pretti", "tsj")


def assert_all_agree(r: Relation, s: Relation) -> None:
    expected = oracle_pairs(r, s)
    for name in ALGORITHMS:
        got = set_containment_join(r, s, algorithm=name).pair_set()
        assert got == expected, f"{name} diverged from the oracle"


class TestSyntheticRegimes:
    def test_uniform_low_cardinality(self):
        cfg = SyntheticConfig(size=120, avg_cardinality=4, domain=256, seed=200)
        assert_all_agree(*generate_pair(cfg))

    def test_uniform_high_cardinality(self):
        cfg = SyntheticConfig(size=60, avg_cardinality=48, domain=128, seed=201)
        assert_all_agree(*generate_pair(cfg))

    def test_tiny_domain_dense_sets(self):
        """Many containments: sets cover much of a small domain."""
        cfg = SyntheticConfig(size=80, avg_cardinality=6, domain=12, seed=202)
        assert_all_agree(*generate_pair(cfg))

    def test_zipf_elements(self):
        cfg = SyntheticConfig(size=100, avg_cardinality=8, domain=300,
                              element_dist="zipf", seed=203)
        assert_all_agree(*generate_pair(cfg))

    def test_zipf_cardinality(self):
        cfg = SyntheticConfig(size=100, avg_cardinality=16, domain=300,
                              cardinality_dist="zipf", seed=204)
        assert_all_agree(*generate_pair(cfg))

    def test_poisson_both_axes(self):
        cfg = SyntheticConfig(size=100, avg_cardinality=8, domain=300,
                              cardinality_dist="poisson", element_dist="poisson",
                              seed=205)
        assert_all_agree(*generate_pair(cfg))


class TestEdgeShapes:
    def test_with_empty_sets_on_both_sides(self):
        r = random_relation(60, 8, 64, seed=206, min_cardinality=0)
        s = random_relation(60, 5, 64, seed=207, min_cardinality=0)
        assert_all_agree(r, s)

    def test_duplicate_heavy(self):
        base = [{1, 2}, {1, 2, 3}, {4}, set(), {1, 2}]
        r = Relation.from_sets(base * 12)
        s = Relation.from_sets(base * 12)
        assert_all_agree(r, s)

    def test_all_identical_sets(self):
        r = Relation.from_sets([{3, 5}] * 20)
        s = Relation.from_sets([{3, 5}] * 20)
        assert_all_agree(r, s)

    def test_chain_of_nested_sets(self):
        """set_i = {0..i}: containment is a total order."""
        sets = [set(range(i)) for i in range(15)]
        r = Relation.from_sets(sets)
        s = Relation.from_sets(sets)
        assert_all_agree(r, s)

    def test_singletons_only(self):
        r = Relation.from_sets([{i % 7} for i in range(30)])
        s = Relation.from_sets([{i % 5} for i in range(30)])
        assert_all_agree(r, s)

    def test_disjoint_domains_no_pairs_except_empty(self):
        r = Relation.from_sets([{1, 2}, {3}])
        s = Relation.from_sets([{100}, {200, 201}])
        assert_all_agree(r, s)


class TestSurrogateShapes:
    @pytest.mark.parametrize("name", ["flickr", "orkut", "twitter", "webbase"])
    def test_surrogates(self, name):
        sizes = {"flickr": 80, "orkut": 50, "twitter": 40, "webbase": 25}
        r = make_surrogate(name, sizes[name], seed=208)
        s = make_surrogate(name, sizes[name], seed=209)
        assert_all_agree(r, s)
