"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.relations.relation import Relation, SetRecord


def random_relation(
    size: int,
    max_cardinality: int,
    domain: int,
    seed: int,
    start_id: int = 0,
    min_cardinality: int = 0,
) -> Relation:
    """A reproducible random relation for tests (stdlib RNG, no numpy).

    Cardinalities are uniform on [min_cardinality, max_cardinality];
    elements uniform without replacement over [0, domain).
    """
    rng = random.Random(seed)
    records = []
    for i in range(size):
        k = rng.randint(min_cardinality, min(max_cardinality, domain))
        records.append(SetRecord(start_id + i, frozenset(rng.sample(range(domain), k))))
    return Relation(records, name=f"rand(seed={seed})")


def oracle_pairs(r: Relation, s: Relation) -> set[tuple[int, int]]:
    """Reference containment-join output, computed the obvious way."""
    return {
        (rr.rid, ss.rid)
        for rr in r
        for ss in s
        if rr.elements >= ss.elements
    }


@pytest.fixture
def table1_profiles() -> Relation:
    """The paper's Table I user-profiles relation (a..h -> 0..7)."""
    # u1={b,d,f,g}, u2={a,c,h}, u3={a,c,d}
    return Relation.from_sets([{1, 3, 5, 6}, {0, 2, 7}, {0, 2, 3}], name="profiles")


@pytest.fixture
def table1_preferences() -> Relation:
    """The paper's Table I user-preferences relation."""
    # p1={b,d}, p2={b,f,g}, p3={a,c,h}
    return Relation.from_sets([{1, 3}, {1, 5, 6}, {0, 2, 7}], name="preferences")


#: Expected Table I join result with 0-based ids: {(u1,p1),(u1,p2),(u2,p3)}.
TABLE1_EXPECTED = {(0, 0), (0, 1), (1, 2)}


@pytest.fixture
def small_pair() -> tuple[Relation, Relation]:
    """A small random (R, S) pair exercising empty sets and duplicates."""
    r = random_relation(60, 10, 40, seed=11)
    s = random_relation(60, 6, 40, seed=22)
    return r, s
