"""Planner unit tests: plan selection on hand-built statistics, pinned-plan
parity, explain output, serialization, and validator consistency."""

from __future__ import annotations

import pytest

from repro.core.registry import (
    ALGORITHMS,
    cost_profile,
    execute_plan,
    make_algorithm,
    plan,
    set_containment_join,
)
from repro.errors import AlgorithmError, ExternalMemoryError, PlanError
from repro.exec import DiskPartitionedJoin, ParallelJoin, ShardedJoin
from repro.obs import Tracer, use
from repro.planner import (
    AUTO_CANDIDATES,
    COST_PROFILES,
    CostEstimate,
    Plan,
    Planner,
    Workload,
)
from repro.relations.relation import Relation
from repro.relations.stats import RelationStats, compute_stats

from .conftest import random_relation


def make_stats(
    size: int,
    avg_c: float = 16.0,
    median_c: float = 16.0,
    domain: int = 1024,
) -> RelationStats:
    """Hand-built statistics: the planner's whole input, no relation needed."""
    return RelationStats(
        size=size,
        avg_cardinality=avg_c,
        median_cardinality=median_c,
        min_cardinality=1,
        max_cardinality=int(max(avg_c, median_c) * 2),
        domain_cardinality=domain,
        total_elements=int(size * avg_c),
        duplicate_sets=0,
        cardinality_stddev=1.0,
        max_element=domain - 1,
    )


# ----------------------------------------------------------------------
# Plan selection on hand-built statistics
# ----------------------------------------------------------------------
class TestPlanSelection:
    def test_tiny_s_plans_in_process(self):
        p = Planner().plan(make_stats(1000), make_stats(10))
        assert p.executor == "inline"
        assert p.options() == {}
        assert not p.pinned

    def test_huge_s_with_budget_plans_disk(self):
        workload = Workload(memory_budget_tuples=10_000)
        p = Planner().plan(make_stats(500_000), make_stats(500_000), workload)
        assert p.executor == "disk"
        assert p.options() == {"max_tuples": 10_000}
        chunking = p.decision("chunking")
        assert chunking.detail_dict()["r_partitions"] == 50

    def test_generous_budget_stays_in_process(self):
        workload = Workload(memory_budget_tuples=10_000)
        p = Planner().plan(make_stats(100), make_stats(100), workload)
        assert p.executor == "inline"

    def test_probe_many_plans_prepared_index_reuse(self):
        workload = Workload(mode="probe_many", probe_batches=50)
        p = Planner().plan(None, make_stats(1000), workload)
        assert p.executor == "inline"
        executor = p.decision("executor")
        assert executor.detail_dict()["reused_index"] is True
        assert executor.detail_dict()["probe_batches"] == 50
        # Amortisation is visible on the algorithm decision.
        assert "amortised_cost" in p.decision("algorithm").detail_dict()

    def test_probe_many_beats_worker_hint(self):
        """Index reuse requires staying in-process even with workers hinted."""
        workload = Workload(mode="probe_many", workers=4)
        p = Planner().plan(None, make_stats(1000), workload)
        assert p.executor == "inline"

    def test_workers_hint_plans_parallel(self):
        p = Planner().plan(make_stats(1000), make_stats(1000), Workload(workers=4))
        assert p.executor == "parallel"
        assert p.options() == {"workers": 4, "chunks": 4}

    def test_fault_tolerance_hint_plans_resilient(self):
        workload = Workload(workers=4, fault_tolerance=True)
        p = Planner().plan(make_stats(1000), make_stats(1000), workload)
        assert p.executor == "resilient"

    def test_budget_with_workers_plans_sharded(self):
        # PR 6: when S exceeds the budget *and* workers are available, the
        # planner shards the index across them instead of spilling to disk.
        workload = Workload(workers=4, memory_budget_tuples=100)
        p = Planner().plan(make_stats(1000), make_stats(1000), workload)
        assert p.executor == "sharded"
        assert p.options()["shards"] >= 10  # ceil(|S| / budget)

    def test_budget_without_workers_still_plans_disk(self):
        workload = Workload(workers=1, memory_budget_tuples=100)
        p = Planner().plan(make_stats(1000), make_stats(1000), workload)
        assert p.executor == "disk"

    def test_low_median_cardinality_selects_pretti_plus(self):
        p = Planner().plan(make_stats(100), make_stats(100, median_c=4.0))
        assert p.algorithm == "pretti+"

    def test_high_median_cardinality_selects_ptsj(self):
        p = Planner().plan(make_stats(100), make_stats(100, avg_c=64, median_c=64.0))
        assert p.algorithm == "ptsj"

    def test_auto_choice_is_regime_gated(self):
        """Only the paper's production pair is ever auto-chosen."""
        for median in (1.0, 16.0, 31.0, 32.0, 64.0, 500.0):
            p = Planner().plan(make_stats(100), make_stats(100, median_c=median))
            assert p.algorithm in AUTO_CANDIDATES

    def test_every_algorithm_appears_costed_in_the_plan(self):
        p = Planner().plan(make_stats(100), make_stats(100))
        algorithm = p.decision("algorithm")
        considered = {algorithm.choice} | {alt.choice for alt in algorithm.rejected}
        assert considered == set(ALGORITHMS)
        assert algorithm.cost is not None
        costed_rejects = [alt for alt in algorithm.rejected if alt.cost is not None]
        assert len(costed_rejects) >= 2

    def test_signature_decision_costs_neighbouring_lengths(self):
        p = Planner().plan(make_stats(100, avg_c=64, median_c=64.0),
                           make_stats(100, avg_c=64, median_c=64.0))
        signature = p.decision("signature")
        assert signature.choice.endswith("bits")
        assert signature.cost is not None
        assert {alt.cost is not None for alt in signature.rejected} == {True}

    def test_inverted_family_has_no_signature_length(self):
        p = Planner().plan(make_stats(100), make_stats(100, median_c=2.0))
        assert p.algorithm == "pretti+"
        assert p.decision("signature").choice == "none"

    def test_empty_relations_plan_without_error(self):
        empty = RelationStats(0, 0.0, 0.0, 0, 0, 0, 0, 0)
        p = Planner().plan(empty, empty)
        assert p.algorithm in AUTO_CANDIDATES


# ----------------------------------------------------------------------
# Pinned plans: explicit-algorithm parity
# ----------------------------------------------------------------------
class TestPinnedPlans:
    def test_pinned_plan_records_choice_without_alternatives(self):
        p = plan(Relation.from_sets([{1}]), Relation.from_sets([{1}]),
                 algorithm="nested-loop")
        assert p.pinned and p.algorithm == "nested-loop"
        assert p.decision("algorithm").rejected == ()

    def test_pinned_plan_resolves_aliases(self):
        r = Relation.from_sets([{1}])
        assert plan(r, r, algorithm="prettiplus").algorithm == "pretti+"
        assert plan(r, r, algorithm="NL").algorithm == "nested-loop"

    def test_unknown_algorithm_raises_before_planning(self):
        r = Relation.from_sets([{1}])
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            plan(r, r, algorithm="btree")

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_pinned_execution_matches_classic_path_exactly(self, name):
        """Explicit-algorithm calls keep bit-for-bit identical JoinStats."""
        r = random_relation(40, 8, 60, seed=51)
        s = random_relation(40, 5, 60, seed=52)
        classic = make_algorithm(name).join(r, s)
        planned = set_containment_join(r, s, algorithm=name)
        assert planned.pairs == classic.pairs
        for field in ("algorithm", "pairs", "candidates", "verifications",
                      "node_visits", "intersections", "signature_bits",
                      "index_nodes"):
            assert getattr(planned.stats, field) == getattr(classic.stats, field)
        assert planned.stats.extras.keys() == classic.stats.extras.keys()

    def test_pinned_kwargs_forwarded_verbatim(self):
        r = random_relation(30, 8, 60, seed=53)
        s = random_relation(30, 5, 60, seed=54)
        classic = make_algorithm("ptsj", bits=64).join(r, s)
        planned = set_containment_join(r, s, algorithm="ptsj", bits=64)
        assert planned.stats.signature_bits == classic.stats.signature_bits == 64
        assert planned.pairs == classic.pairs

    def test_auto_plan_does_not_inject_bits(self):
        """The signature decision annotates; the algorithm still derives b."""
        r = random_relation(40, 40, 200, seed=55, )
        s = random_relation(40, 36, 200, seed=56)
        p = plan(r, s)
        assert "bits" not in p.kwargs()
        auto = set_containment_join(r, s)
        classic = make_algorithm(p.algorithm).join(r, s)
        assert auto.stats.signature_bits == classic.stats.signature_bits


# ----------------------------------------------------------------------
# Explain output
# ----------------------------------------------------------------------
class TestExplain:
    def test_explain_tree_shape(self):
        p = plan(random_relation(30, 40, 200, seed=57),
                 random_relation(30, 36, 200, seed=58))
        text = p.explain()
        assert text.startswith("Plan: ")
        for name in ("algorithm", "signature", "executor", "chunking"):
            assert f" {name} = " in text

    def test_explain_shows_costed_rejected_alternatives(self):
        """Acceptance criterion: >= 2 rejected alternatives with estimates."""
        p = plan(random_relation(30, 40, 200, seed=57),
                 random_relation(30, 36, 200, seed=58))
        costed_rejects = [
            line for line in p.explain().splitlines()
            if "rejected:" in line and "cost=" in line
        ]
        assert len(costed_rejects) >= 2

    def test_explain_marks_pinned_plans(self):
        r = Relation.from_sets([{1, 2}])
        assert "(pinned)" in plan(r, r, algorithm="tsj").explain()

    def test_model_regime_disagreement_is_visible(self):
        """The model's cheapest pick is named even when the regime overrides."""
        p = Planner().plan(make_stats(100), make_stats(100))
        assert "model_cheapest" in p.decision("algorithm").detail_dict()


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class TestSerialization:
    @pytest.mark.parametrize("workload", [
        Workload(),
        Workload(mode="probe_many", probe_batches=7),
        Workload(memory_budget_tuples=64),
        Workload(workers=3, fault_tolerance=True),
        Workload(variant="similarity"),
    ], ids=["oneshot", "probe_many", "budget", "resilient", "variant"])
    def test_plan_roundtrips_through_json(self, workload):
        p = Planner().plan(make_stats(1000), make_stats(1000), workload)
        assert Plan.from_json(p.to_json()) == p

    def test_pinned_plan_with_kwargs_roundtrips(self):
        r = Relation.from_sets([{1, 2, 3}])
        p = plan(r, r, algorithm="ptsj", bits=128)
        restored = Plan.from_json(p.to_json(indent=2))
        assert restored == p
        assert restored.kwargs() == {"bits": 128}

    def test_deserialized_plan_executes(self):
        r = random_relation(20, 8, 40, seed=59)
        s = random_relation(20, 5, 40, seed=60)
        p = Plan.from_json(plan(r, s).to_json())
        direct = execute_plan(plan(r, s), r, s)
        assert set(execute_plan(p, r, s).pairs) == set(direct.pairs)

    def test_hand_built_plan_rejects_unknown_executor(self):
        with pytest.raises(PlanError, match="unknown executor"):
            Plan(algorithm="ptsj", executor="gpu")


# ----------------------------------------------------------------------
# Workload validation and validator consistency (one message everywhere)
# ----------------------------------------------------------------------
class TestValidatorConsistency:
    def test_workload_rejects_unknown_mode_and_variant(self):
        with pytest.raises(PlanError, match="unknown workload mode"):
            Workload(mode="batch")
        with pytest.raises(PlanError, match="unknown join variant"):
            Workload(variant="overlap")

    def test_workers_message_is_identical_everywhere(self):
        with pytest.raises(ValueError, match="workers must be positive, got 0") :
            Workload(workers=0)
        with pytest.raises(ValueError, match="workers must be positive, got 0"):
            ParallelJoin(workers=0)

    def test_max_tuples_message_is_identical_everywhere(self):
        with pytest.raises(ValueError, match="max_tuples must be positive, got -1"):
            Workload(memory_budget_tuples=-1)
        with pytest.raises(ValueError, match="max_tuples must be positive, got -1"):
            DiskPartitionedJoin(max_tuples=-1)

    def test_domain_errors_are_still_catchable(self):
        """The historical exception types survive the ValueError unification."""
        with pytest.raises(AlgorithmError):
            ParallelJoin(workers=0)
        with pytest.raises(ExternalMemoryError):
            DiskPartitionedJoin(max_tuples=0)
        with pytest.raises(ValueError):
            Workload(probe_batches=0)


# ----------------------------------------------------------------------
# Cost profiles and registry metadata
# ----------------------------------------------------------------------
class TestCostProfiles:
    def test_every_registry_algorithm_has_a_profile(self):
        assert set(COST_PROFILES) == set(ALGORITHMS)

    def test_only_the_production_pair_is_auto_eligible(self):
        eligible = {name for name, p in COST_PROFILES.items() if p.auto_eligible}
        assert eligible == set(AUTO_CANDIDATES)
        for name, profile in COST_PROFILES.items():
            if not profile.auto_eligible:
                assert profile.reject_reason

    def test_cost_profile_accessor_resolves_aliases(self):
        assert cost_profile("prettiplus") is COST_PROFILES["pretti+"]
        with pytest.raises(AlgorithmError):
            cost_profile("btree")

    def test_estimates_are_finite_and_positive(self):
        r, s = make_stats(1000), make_stats(1000)
        for name, profile in COST_PROFILES.items():
            estimate = profile.estimate(r, s, 256)
            assert estimate.total < float("inf")
            assert estimate.build >= 0 and estimate.probe > 0, name

    def test_degenerate_stats_do_not_crash_estimators(self):
        empty = RelationStats(0, 0.0, 0.0, 0, 0, 0, 0, 0)
        for profile in COST_PROFILES.values():
            assert profile.estimate(empty, empty, 8).total >= 0

    def test_cost_estimate_total(self):
        assert CostEstimate(build=2.0, probe=3.0).total == 5.0


# ----------------------------------------------------------------------
# Statistics memoization (satellite: compute-once derived quantities)
# ----------------------------------------------------------------------
class TestStatsMemoization:
    def test_compute_stats_is_cached_on_the_relation(self):
        relation = random_relation(50, 8, 60, seed=61)
        assert compute_stats(relation) is compute_stats(relation)

    def test_derived_quantities_are_cached_properties(self):
        stats = compute_stats(random_relation(50, 8, 60, seed=62))
        # cached_property memoizes into __dict__ on first access.
        assert "density" not in stats.__dict__
        first = stats.density
        assert stats.__dict__["density"] == first
        assert stats.cardinality_skew == stats.avg_cardinality / stats.median_cardinality

    def test_new_statistics_fields_match_relation(self):
        relation = random_relation(50, 8, 60, seed=63)
        stats = compute_stats(relation)
        assert stats.max_element == relation.max_element()
        assert stats.signature_domain == relation.max_element() + 1
        assert stats.cardinality_stddev >= 0

    def test_planning_consumes_cached_stats(self):
        """Planning twice never rescans: the second plan reuses the cache."""
        r = random_relation(40, 8, 60, seed=64)
        s = random_relation(40, 5, 60, seed=65)
        plan(r, s)
        cached_r, cached_s = r._stats, s._stats
        plan(r, s)
        assert r._stats is cached_r and s._stats is cached_s


# ----------------------------------------------------------------------
# Observability: the plan phase
# ----------------------------------------------------------------------
class TestPlanSpan:
    def test_planning_opens_a_plan_span(self):
        r = random_relation(20, 8, 40, seed=66)
        s = random_relation(20, 5, 40, seed=67)
        tracer = Tracer()
        with use(tracer):
            set_containment_join(r, s)
        span = tracer.root.find("plan")
        assert span is not None and span.calls == 1
        assert tracer.root.find("build") is not None

    def test_plan_phase_is_registered(self):
        from repro.obs.tracer import PHASES

        assert "plan" in PHASES


# ----------------------------------------------------------------------
# Sharded planning (PR 6: the planner costs S-index sharding)
# ----------------------------------------------------------------------
class TestShardedPlanning:
    def test_explicit_shard_hint_plans_sharded(self):
        workload = Workload(workers=2, shards=3)
        p = Planner().plan(make_stats(1000), make_stats(1000), workload)
        assert p.executor == "sharded"
        assert p.options() == {"workers": 2, "shards": 3, "strategy": "element"}
        chunking = p.decision("chunking")
        detail = chunking.detail_dict()
        assert detail["shards"] == 3
        assert 1.0 <= detail["expected_probe_fanout"] <= 3.0
        assert any(alt.choice == "signature partitioning" for alt in chunking.rejected)

    def test_sharded_decision_costs_the_alternatives(self):
        p = Planner().plan(make_stats(1000), make_stats(1000), Workload(workers=2, shards=3))
        executor = p.decision("executor")
        assert executor.choice == "sharded"
        assert executor.cost is not None
        assert {alt.choice for alt in executor.rejected} >= {"inline", "parallel"}

    def test_probe_many_beats_shard_hint(self):
        workload = Workload(mode="probe_many", workers=4, shards=4)
        p = Planner().plan(None, make_stats(1000), workload)
        assert p.executor == "inline"
        rejected = {alt.choice for alt in p.decision("executor").rejected}
        assert "sharded" in rejected

    def test_unsharded_plans_record_sharded_as_rejected(self):
        p = Planner().plan(make_stats(1000), make_stats(1000), Workload(workers=4))
        assert p.executor == "parallel"
        rejected = {alt.choice for alt in p.decision("executor").rejected}
        assert "sharded" in rejected

    def test_shard_count_scales_with_budget_pressure(self):
        planner = Planner()
        r, s = make_stats(1000), make_stats(1000)
        assert planner._shard_count(r, s, Workload(workers=4)) == 4
        assert planner._shard_count(r, s, Workload(workers=4, shards=9)) == 9
        # Budget pressure raises the count past the worker count.
        assert planner._shard_count(
            r, s, Workload(workers=4, memory_budget_tuples=100)
        ) == 10

    def test_sharded_plan_round_trips_and_executes(self):
        r = random_relation(40, 6, 30, seed=71)
        s = random_relation(40, 4, 30, seed=72)
        p = plan(r, s, workload=Workload(workers=2, shards=2))
        assert p.executor == "sharded"
        revived = Plan.from_json(p.to_json())
        assert revived.workload.shards == 2
        result = execute_plan(revived, r, s)
        inline = execute_plan(Plan(algorithm=p.algorithm), r, s)
        assert sorted(result.pairs) == sorted(inline.pairs)

    def test_explain_renders_the_sharded_story(self):
        p = Planner().plan(make_stats(1000), make_stats(1000), Workload(workers=2, shards=3))
        text = p.explain()
        assert "sharded" in text
        assert "S-shard" in text
        assert "expected_probe_fanout" in text


class TestEstimateSharded:
    def test_one_shard_one_worker_is_the_base_estimate(self):
        r, s = make_stats(1000), make_stats(1000)
        profile = COST_PROFILES["ptsj"]
        base = profile.estimate(r, s, 64)
        sharded = profile.estimate_sharded(r, s, 64, shards=1, workers=1)
        assert sharded.build == base.build
        assert sharded.probe == base.probe

    def test_parallelism_divides_the_build(self):
        r, s = make_stats(1000), make_stats(1000)
        profile = COST_PROFILES["ptsj"]
        base = profile.estimate(r, s, 64)
        sharded = profile.estimate_sharded(r, s, 64, shards=4, workers=4)
        assert sharded.build == pytest.approx(base.build / 4)

    def test_element_routing_beats_signature_broadcast(self):
        # Without skew, routed probes touch fewer shard-index fractions
        # than a broadcast, so element partitioning must cost no more.
        r, s = make_stats(1000, avg_c=8.0, median_c=8.0), make_stats(1000, avg_c=8.0, median_c=8.0)
        profile = COST_PROFILES["ptsj"]
        element = profile.estimate_sharded(r, s, 64, shards=8, workers=4, strategy="element")
        signature = profile.estimate_sharded(r, s, 64, shards=8, workers=4, strategy="signature")
        assert element.probe <= signature.probe

    def test_skew_penalises_element_placement_only(self):
        skewed = make_stats(1000, avg_c=32.0, median_c=4.0)  # skew = 8, capped at 2
        uniform = make_stats(1000, avg_c=32.0, median_c=32.0)
        profile = COST_PROFILES["ptsj"]
        penalised = profile.estimate_sharded(make_stats(1000), skewed, 64, 4, 4)
        clean = profile.estimate_sharded(make_stats(1000), uniform, 64, 4, 4)
        assert penalised.probe == pytest.approx(clean.probe * 2.0)
        sig_a = profile.estimate_sharded(make_stats(1000), skewed, 64, 4, 4, "signature")
        sig_b = profile.estimate_sharded(make_stats(1000), uniform, 64, 4, 4, "signature")
        assert sig_a.probe == pytest.approx(sig_b.probe)

    def test_every_profile_estimates_sharded_without_error(self):
        r, s = make_stats(100), make_stats(100)
        for profile in COST_PROFILES.values():
            est = profile.estimate_sharded(r, s, 16, shards=3, workers=2)
            assert est.build >= 0 and est.probe >= 0
