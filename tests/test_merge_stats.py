"""Property tests for the shared partial-stats fold (:mod:`repro.exec.merge`).

Every partitioned executor relies on :func:`repro.exec.merge.merge_stats`
being order-insensitive: pooled pieces complete in nondeterministic order,
yet the merged counters must be bit-for-bit reproducible.  That holds
because the fold is a sum over the additive fields and a max over the
structural ones — both associative and commutative.  Hypothesis checks
the algebra directly: any permutation of the pieces, and any hierarchical
grouping (merging pre-merged sub-aggregates), yields identical totals.

Timing fields are floats, and float addition is *not* associative in
general — but the executors only ever fold a bounded number of
nonnegative wall-times.  The strategies below draw dyadic rationals
(``n / 64`` with bounded ``n``) whose sums stay exactly representable,
so equality here is exact, mirroring the determinism the executors
actually get from summing in a fixed (shard-id / chunk-index) order.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import JoinStats
from repro.exec.merge import (
    ADDITIVE_EXTRAS,
    ADDITIVE_FIELDS,
    MARKER_EXTRAS,
    STRUCTURAL_FIELDS,
    merge_stats,
)

#: Exact dyadic wall-times: sums of any few hundred stay representable.
_seconds = st.integers(min_value=0, max_value=1 << 20).map(lambda n: n / 64.0)
_count = st.integers(min_value=0, max_value=1 << 40)
#: Governance markers a piece may carry after a budget degradation.
_degraded = st.sampled_from(["disk", "sharded"])


@st.composite
def join_stats(draw, governed: bool = False) -> JoinStats:
    stats = JoinStats(
        algorithm="part",
        build_seconds=draw(_seconds),
        probe_seconds=draw(_seconds),
        pairs=draw(_count),
        candidates=draw(_count),
        verifications=draw(_count),
        node_visits=draw(_count),
        intersections=draw(_count),
        index_nodes=draw(_count),
        signature_bits=draw(st.integers(min_value=0, max_value=1 << 16)),
    )
    if governed:
        # Each governance extra is independently present-or-absent, the
        # way real pieces carry them (ungoverned shards have none).
        for key in ADDITIVE_EXTRAS:
            if draw(st.booleans()):
                stats.extras[key] = draw(st.integers(min_value=0, max_value=1 << 20))
        if draw(st.booleans()):
            stats.extras["degraded_to"] = draw(_degraded)
    return stats


def fold(parts: list[JoinStats]) -> JoinStats:
    total = JoinStats(algorithm="total")
    for part in parts:
        merge_stats(total, part)
    return total


def merged_fields(stats: JoinStats) -> dict[str, float | int]:
    return {f: getattr(stats, f) for f in ADDITIVE_FIELDS + STRUCTURAL_FIELDS}


def test_field_partition_is_complete():
    # Every numeric JoinStats field is either additive, structural, or
    # deliberately excluded (pairs is derived from the concatenated pair
    # list; extras are executor-shaped).  A new field must be classified.
    numeric = {
        f.name
        for f in dataclasses.fields(JoinStats)
        if f.name not in ("algorithm", "extras")
    }
    classified = set(ADDITIVE_FIELDS) | set(STRUCTURAL_FIELDS) | {"pairs"}
    assert numeric == classified


@given(parts=st.lists(join_stats(), max_size=8), data=st.data())
@settings(max_examples=200, deadline=None)
def test_fold_is_permutation_invariant(parts, data):
    shuffled = data.draw(st.permutations(parts))
    assert merged_fields(fold(parts)) == merged_fields(fold(shuffled))


@given(parts=st.lists(join_stats(), min_size=1, max_size=8), data=st.data())
@settings(max_examples=200, deadline=None)
def test_hierarchical_merge_equals_flat_fold(parts, data):
    # Split the pieces at an arbitrary point, merge each half into its
    # own sub-aggregate, then merge the sub-aggregates — the grouped
    # result must equal the flat left-to-right fold (associativity).
    cut = data.draw(st.integers(min_value=0, max_value=len(parts)))
    left, right = fold(parts[:cut]), fold(parts[cut:])
    grouped = merge_stats(left, right)
    assert merged_fields(grouped) == merged_fields(fold(parts))


@given(part=join_stats())
@settings(max_examples=50, deadline=None)
def test_zero_is_the_identity(part):
    before = merged_fields(part)
    total = merge_stats(JoinStats(), dataclasses.replace(part))
    assert merged_fields(total) == before
    # And folding a zero part into an aggregate changes nothing.
    untouched = fold([part])
    merge_stats(untouched, JoinStats())
    assert merged_fields(untouched) == before


@given(part=join_stats())
@settings(max_examples=50, deadline=None)
def test_merge_mutates_and_returns_the_total(part):
    total = JoinStats()
    returned = merge_stats(total, part)
    assert returned is total
    # The part is never mutated by the fold.
    snapshot = merged_fields(part)
    merge_stats(JoinStats(), part)
    assert merged_fields(part) == snapshot


def test_pairs_is_not_merged():
    total = JoinStats(pairs=3)
    merge_stats(total, JoinStats(pairs=5))
    assert total.pairs == 3


# ----------------------------------------------------------------------
# Governance extras (deadline_polls / cancelled_chunks / degraded_to)
# ----------------------------------------------------------------------
def merged_extras(stats: JoinStats) -> dict[str, object]:
    keys = ADDITIVE_EXTRAS + MARKER_EXTRAS
    return {k: stats.extras.get(k) for k in keys}


@given(parts=st.lists(join_stats(governed=True), max_size=8), data=st.data())
@settings(max_examples=200, deadline=None)
def test_governance_extras_fold_is_permutation_invariant(parts, data):
    shuffled = data.draw(st.permutations(parts))
    assert merged_extras(fold(parts)) == merged_extras(fold(shuffled))


@given(parts=st.lists(join_stats(governed=True), min_size=1, max_size=8), data=st.data())
@settings(max_examples=200, deadline=None)
def test_governance_extras_merge_associatively(parts, data):
    # Same hierarchical-vs-flat check as the field fold: merging
    # pre-merged sub-aggregates must equal the flat left-to-right fold,
    # for the summed extras and the maxed marker alike.
    cut = data.draw(st.integers(min_value=0, max_value=len(parts)))
    grouped = merge_stats(fold(parts[:cut]), fold(parts[cut:]))
    assert merged_extras(grouped) == merged_extras(fold(parts))


@given(parts=st.lists(join_stats(governed=True), min_size=1, max_size=8))
@settings(max_examples=200, deadline=None)
def test_governance_extras_sum_and_max_by_hand(parts):
    total = fold(parts)
    for key in ADDITIVE_EXTRAS:
        carried = [p.extras[key] for p in parts if key in p.extras]
        expected = sum(carried) if carried else None
        assert total.extras.get(key) == expected
    markers = [p.extras["degraded_to"] for p in parts if "degraded_to" in p.extras]
    assert total.extras.get("degraded_to") == (max(markers) if markers else None)


@given(parts=st.lists(join_stats(governed=True), min_size=1, max_size=8), data=st.data())
@settings(max_examples=200, deadline=None)
def test_partial_shard_set_still_merges_structural_fields(parts, data):
    # A cancelled run folds only the pieces that finished.  Whatever
    # subset survives — and in whatever completion order — the
    # structural fields and governance extras obey the same algebra, so
    # the partial aggregate is deterministic for that subset.
    survivors = [p for p in parts if data.draw(st.booleans())]
    shuffled = data.draw(st.permutations(survivors))
    total, reordered = fold(survivors), fold(shuffled)
    assert merged_fields(total) == merged_fields(reordered)
    assert merged_extras(total) == merged_extras(reordered)
    for field in STRUCTURAL_FIELDS:
        expected = max((getattr(p, field) for p in survivors), default=0)
        assert getattr(total, field) == expected


def test_ungoverned_pieces_leave_extras_absent():
    total = fold([JoinStats(), JoinStats()])
    assert total.extras == {}
