"""Unit tests for the benchmark harness, memory measurement and reporting."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    ALL_ALGORITHMS,
    fig5a_grid,
    fig5b_grid,
    fig5c_grid,
    fig6b_configs,
    fig6c_configs,
    fig6def_configs,
    fig7_configs,
    fig8_datasets,
    shj_infeasible,
)
from repro.bench.harness import (
    clear_dataset_cache,
    dataset_pair,
    run_algorithm,
    sweep,
)
from repro.bench.memory import deep_sizeof, index_memory_bytes, memory_per_tuple
from repro.bench.reporting import (
    fmt_bytes,
    fmt_seconds,
    format_ratios,
    format_series,
    format_table,
)
from repro.core.registry import make_algorithm
from repro.datagen.synthetic import SyntheticConfig
from tests.conftest import oracle_pairs, random_relation


class TestDeepSizeof:
    def test_counts_container_contents(self):
        assert deep_sizeof([1000, 2000]) > deep_sizeof([])

    def test_shared_objects_counted_once(self):
        shared = list(range(100))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])

    def test_cycles_are_safe(self):
        a: list = []
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_slots_objects_measured(self):
        from repro.tries.patricia import PatriciaTrie

        trie = PatriciaTrie(32)
        empty_size = deep_sizeof(trie)
        for sig in (1, 2, 4, 8):
            trie.insert(sig).append(sig)
        assert deep_sizeof(trie) > empty_size

    def test_deep_structures_no_recursion_error(self):
        node: list = []
        for _ in range(5000):
            node = [node]
        assert deep_sizeof(node) > 0


class TestIndexMemory:
    def test_pretti_uses_most_memory(self):
        """The Fig. 6a ordering at medium cardinality."""
        r = random_relation(150, 24, 300, seed=500, min_cardinality=12)
        s = random_relation(150, 24, 300, seed=501, min_cardinality=12)
        per_tuple = {
            name: memory_per_tuple(name, r, s)
            for name in ("shj", "pretti", "ptsj", "pretti+")
        }
        assert per_tuple["pretti"] == max(per_tuple.values())
        assert per_tuple["pretti+"] < per_tuple["pretti"]

    def test_index_memory_requires_build(self):
        algo = make_algorithm("ptsj", bits=32)
        # Without a build the trie is None -> zero measurable index.
        assert index_memory_bytes(algo) == 0

    def test_memory_per_tuple_empty(self):
        from repro.relations.relation import Relation

        assert memory_per_tuple("ptsj", Relation([]), Relation([]), bits=8) == 0.0


class TestHarness:
    def test_run_algorithm_correctness_and_timing(self):
        r = random_relation(40, 6, 30, seed=502)
        s = random_relation(40, 4, 30, seed=503)
        record = run_algorithm("ptsj", r, s, repeats=3)
        assert record.algorithm == "ptsj"
        assert record.seconds > 0
        assert record.pairs == len(oracle_pairs(r, s))

    def test_dataset_pair_cached(self):
        clear_dataset_cache()
        cfg = SyntheticConfig(size=20, avg_cardinality=4, domain=64, seed=504)
        a = dataset_pair(cfg)
        b = dataset_pair(cfg)
        assert a[0] is b[0] and a[1] is b[1]
        clear_dataset_cache()
        c = dataset_pair(cfg)
        assert c[0] is not a[0]

    def test_sweep_shape_and_skip(self):
        configs = [
            SyntheticConfig(size=16, avg_cardinality=4, domain=64, seed=505),
            SyntheticConfig(size=32, avg_cardinality=4, domain=64, seed=506),
        ]
        series = sweep(configs, ["ptsj", "pretti+"],
                       skip=lambda name, cfg: name == "ptsj" and cfg.size == 32)
        assert len(series["ptsj"]) == len(series["pretti+"]) == 2
        assert series["ptsj"][1] is None
        assert all(v is not None for v in series["pretti+"])


class TestReporting:
    def test_fmt_seconds_scales(self):
        assert fmt_seconds(0.0000005).endswith("us")
        assert fmt_seconds(0.005).endswith("ms")
        assert fmt_seconds(2.5) == "2.50s"

    def test_fmt_bytes_scales(self):
        assert fmt_bytes(100) == "100B"
        assert fmt_bytes(2048) == "2.0KB"
        assert fmt_bytes(3 * 1024 ** 2) == "3.00MB"

    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["bb", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "-+-" in lines[2]
        assert len(lines) == 5

    def test_format_series_renders_none_as_dash(self):
        out = format_series("fig", "x", [1, 2], {"a": [0.5, None]})
        assert "-" in out.splitlines()[-1]

    def test_format_ratios_winner_is_1x(self):
        out = format_ratios("fig8", ["ds"], {"a": [2.0], "b": [1.0]})
        assert "2.0x" in out and "1.0x" in out


class TestExperimentGrids:
    def test_fig5_grids_shapes(self):
        assert len(fig5a_grid()) == 5
        assert len(fig5b_grid()) == 4
        assert len(fig5c_grid()) == 5

    def test_fig6_grids(self):
        assert len(fig6b_configs()) == 5
        assert len(fig6c_configs()) == 4
        assert [c.avg_cardinality for c in fig6c_configs()] == [4, 16, 64, 256]
        sizes = [c.size for c in fig6def_configs(16)]
        assert sizes == sorted(sizes)

    def test_fig7_grids(self):
        for axis in ("cardinality", "element"):
            for dist in ("poisson", "zipf"):
                configs = fig7_configs(axis, dist)
                assert len(configs) == 3
                if axis == "cardinality":
                    assert all(c.cardinality_dist == dist for c in configs)
                else:
                    assert all(c.element_dist == dist for c in configs)

    def test_fig7_invalid_axis(self):
        with pytest.raises(ValueError):
            fig7_configs("colour", "zipf")

    def test_fig8_datasets_scaled(self):
        datasets = fig8_datasets(base=16)
        names = [name for name, _, _ in datasets]
        assert names == ["flickr", "orkut", "twitter", "webbase"]
        webbase = datasets[-1]
        assert len(webbase[1]) == 16

    def test_shj_infeasible_rule(self):
        small = SyntheticConfig(size=256, avg_cardinality=16, domain=2 ** 9)
        huge = SyntheticConfig(size=2 ** 15, avg_cardinality=256, domain=2 ** 9)
        assert not shj_infeasible("shj", small)
        assert shj_infeasible("shj", huge)
        assert not shj_infeasible("ptsj", huge)

    def test_all_algorithms_constant(self):
        assert set(ALL_ALGORITHMS) == {"shj", "pretti", "ptsj", "pretti+"}


class TestHarnessKwargs:
    def test_sweep_forwards_algorithm_kwargs(self):
        from repro.datagen.synthetic import SyntheticConfig

        configs = [SyntheticConfig(size=24, avg_cardinality=4, domain=64, seed=507)]
        series = sweep(configs, ["ptsj"], algorithm_kwargs={"ptsj": {"bits": 32}})
        assert series["ptsj"][0] is not None

    def test_run_algorithm_kwargs(self):
        r = random_relation(20, 4, 30, seed=508)
        s = random_relation(20, 4, 30, seed=509)
        record = run_algorithm("ptsj", r, s, bits=48)
        assert record.stats.signature_bits == 48

    def test_run_algorithm_median_of_repeats(self):
        r = random_relation(20, 4, 30, seed=510)
        s = random_relation(20, 4, 30, seed=511)
        record = run_algorithm("pretti+", r, s, repeats=5)
        assert record.seconds > 0


class TestReportingFormats:
    def test_custom_value_format(self):
        out = format_series("t", "x", [1], {"a": [3.0]}, value_format=lambda v: f"<{v}>")
        assert "<3.0>" in out

    def test_ratio_chart_handles_none(self):
        out = format_ratios("t", ["d1"], {"a": [None], "b": [2.0]})
        assert "-" in out and "1.0x" in out

    def test_table_title_optional(self):
        out = format_table(["h"], [["v"]])
        assert out.splitlines()[0].startswith("h")
