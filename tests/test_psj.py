"""Unit tests for the PSJ-style pick-partitioned join."""

from __future__ import annotations

import pytest

from repro.errors import ExternalMemoryError
from repro.external.psj import PickPartitionedSetJoin, psj_join
from repro.relations.relation import Relation
from tests.conftest import oracle_pairs, random_relation


class TestPickPartitionedJoin:
    def test_invalid_partition_count(self):
        with pytest.raises(ExternalMemoryError):
            PickPartitionedSetJoin(partitions=0)

    @pytest.mark.parametrize("partitions", [1, 3, 8, 32])
    def test_matches_oracle(self, partitions, small_pair):
        r, s = small_pair
        result = psj_join(r, s, partitions=partitions)
        assert result.pair_set() == oracle_pairs(r, s)

    @pytest.mark.parametrize("algorithm", ["shj", "ptsj", "pretti+"])
    def test_any_inner_algorithm(self, algorithm, small_pair):
        r, s = small_pair
        result = psj_join(r, s, partitions=4, algorithm=algorithm)
        assert result.pair_set() == oracle_pairs(r, s)
        assert result.stats.algorithm == f"psj-{algorithm}"

    def test_empty_s_sets_handled(self):
        r = Relation.from_sets([{1}, {2, 3}])
        s = Relation.from_sets([set(), {2}])
        result = psj_join(r, s, partitions=4)
        assert result.pair_set() == {(0, 0), (1, 0), (1, 1)}

    def test_empty_relations(self):
        empty = Relation([])
        other = Relation.from_sets([{1}])
        assert len(psj_join(empty, other)) == 0
        assert len(psj_join(other, empty)) == 0

    def test_replication_factor_reported(self):
        r = random_relation(50, 8, 64, seed=700)
        s = random_relation(50, 5, 64, seed=701)
        result = psj_join(r, s, partitions=8)
        factor = result.stats.extras["replication_factor"]
        assert 1.0 <= factor <= 8.0

    def test_replication_grows_with_partitions(self):
        r = random_relation(60, 10, 64, seed=702)
        s = random_relation(60, 5, 64, seed=703)
        few = psj_join(r, s, partitions=2).stats.extras["replication_factor"]
        many = psj_join(r, s, partitions=32).stats.extras["replication_factor"]
        assert many > few

    def test_single_partition_degenerates(self):
        # min_cardinality=1: empty R-sets land in zero partitions and would
        # legitimately pull the replication factor below 1.
        r = random_relation(30, 5, 20, seed=704, min_cardinality=1)
        s = random_relation(30, 5, 20, seed=705)
        result = psj_join(r, s, partitions=1)
        assert result.stats.extras["replication_factor"] == pytest.approx(1.0)
        assert result.pair_set() == oracle_pairs(r, s)

    def test_self_join(self):
        rel = random_relation(60, 6, 40, seed=706)
        assert psj_join(rel, rel, partitions=4).pair_set() == oracle_pairs(rel, rel)


class TestAdaptivePick:
    """APSJ-flavoured rarest-element pick (skew balancing)."""

    def test_invalid_pick_policy(self):
        with pytest.raises(ExternalMemoryError):
            PickPartitionedSetJoin(pick="median")

    @pytest.mark.parametrize("pick", ["min", "rarest"])
    def test_both_picks_match_oracle(self, pick, small_pair):
        r, s = small_pair
        result = PickPartitionedSetJoin(partitions=6, pick=pick).join(r, s)
        assert result.pair_set() == oracle_pairs(r, s)

    def test_rarest_pick_balances_skewed_data(self):
        """Zipf elements: the min-pick funnels everything through the hot
        head elements; the rarest pick spreads partitions."""
        from repro.datagen.synthetic import SyntheticConfig, generate_pair

        cfg = SyntheticConfig(size=400, avg_cardinality=8, domain=200,
                              element_dist="zipf", zipf_skew=1.2, seed=720)
        r, s = generate_pair(cfg)
        naive = PickPartitionedSetJoin(partitions=8, pick="min").join(r, s)
        adaptive = PickPartitionedSetJoin(partitions=8, pick="rarest").join(r, s)
        assert naive.pair_set() == adaptive.pair_set()
        assert (adaptive.stats.extras["s_partition_skew"]
                < naive.stats.extras["s_partition_skew"])

    def test_skew_reported(self, small_pair):
        r, s = small_pair
        result = PickPartitionedSetJoin(partitions=4).join(r, s)
        assert result.stats.extras["s_partition_skew"] >= 1.0
