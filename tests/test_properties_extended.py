"""Property-based tests for the later-added components.

Covers the PSJ pick partitioning, the multi-way trie, the Jaccard join,
the densify/relabel transforms and the dynamic Patricia index — each
against an independent formulation of its contract.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.nested_loop import nested_loop_join_pairs
from repro.core.ptsj import PTSJ
from repro.extensions.set_index import PatriciaSetIndex
from repro.extensions.similarity import jaccard_join
from repro.external.psj import PickPartitionedSetJoin
from repro.future.multiway import MultiwayTrie
from repro.relations.relation import Relation
from repro.relations.transforms import apply_universe, densify, relabel_by_frequency
from repro.tries.patricia import PatriciaTrie

element_sets = st.frozensets(st.integers(min_value=0, max_value=50), max_size=10)
set_lists = st.lists(element_sets, min_size=0, max_size=16)

BITS = 20
signatures = st.integers(min_value=0, max_value=(1 << BITS) - 1)


class TestPsjProperties:
    @settings(max_examples=30, deadline=None)
    @given(r_sets=set_lists, s_sets=set_lists,
           partitions=st.integers(1, 12), pick=st.sampled_from(["min", "rarest"]))
    def test_psj_equals_oracle(self, r_sets, s_sets, partitions, pick):
        r, s = Relation.from_sets(r_sets), Relation.from_sets(s_sets)
        got = PickPartitionedSetJoin(partitions=partitions, pick=pick,
                                     algorithm="ptsj").join(r, s).pair_set()
        assert got == set(nested_loop_join_pairs(r, s))


class TestMultiwayProperties:
    @given(sigs=st.lists(signatures, max_size=30), query=signatures)
    def test_multiway_equals_patricia_subsets(self, sigs, query):
        multiway = MultiwayTrie(BITS)
        patricia = PatriciaTrie(BITS)
        for sig in sigs:
            multiway.insert(sig)
            patricia.insert(sig)
        mw = {leaf.signature for leaf in multiway.subset_leaves(query)}
        pt = {leaf.signature for leaf in patricia.subset_leaves(query)}
        assert mw == pt


class TestJaccardProperties:
    @settings(max_examples=30, deadline=None)
    @given(r_sets=set_lists, s_sets=set_lists,
           threshold=st.floats(0.1, 1.0, allow_nan=False))
    def test_jaccard_equals_oracle(self, r_sets, s_sets, threshold):
        r, s = Relation.from_sets(r_sets), Relation.from_sets(s_sets)
        if len(s) == 0:
            return
        got = jaccard_join(r, s, threshold, bits=64).pair_set()
        expected = set()
        for rr in r:
            for ss in s:
                union = len(rr.elements | ss.elements)
                j = (len(rr.elements & ss.elements) / union) if union else 1.0
                if j >= threshold:
                    expected.add((rr.rid, ss.rid))
        assert got == expected


class TestTransformProperties:
    @settings(max_examples=40, deadline=None)
    @given(r_sets=set_lists, s_sets=set_lists)
    def test_densify_preserves_join(self, r_sets, s_sets):
        r, s = Relation.from_sets(r_sets), Relation.from_sets(s_sets)
        dense_s, uni = densify(s)
        dense_r = apply_universe(r, uni)
        got = PTSJ(bits=64).join(dense_r, dense_s).pair_set()
        assert got == set(nested_loop_join_pairs(r, s))

    @settings(max_examples=40, deadline=None)
    @given(sets=set_lists)
    def test_relabel_is_a_bijection_on_used_elements(self, sets):
        rel = Relation.from_sets(sets)
        dense, uni = relabel_by_frequency(rel)
        used = rel.domain()
        assert len(uni) == len(used)
        recovered = frozenset(
            uni.decode(e) for rec in dense for e in rec.elements
        )
        assert recovered == used


class TestDynamicIndexProperties:
    @settings(max_examples=30, deadline=None)
    @given(sets=st.lists(element_sets, min_size=1, max_size=20), data=st.data())
    def test_add_discard_matches_fresh_index(self, sets, data):
        """An index maintained by add/discard answers like one rebuilt
        from scratch on the surviving tuples."""
        index = PatriciaSetIndex(Relation.from_sets(sets), bits=48)
        removed = data.draw(st.sets(st.integers(0, len(sets) - 1)))
        for rid in removed:
            assert index.discard(rid, sets[rid])
        survivors = {i: s for i, s in enumerate(sets) if i not in removed}
        query = data.draw(element_sets)
        got = {id_ for g in index.subsets_of(query) for id_ in g.ids}
        expected = {i for i, s in survivors.items() if s <= query}
        assert got == expected
        index.trie.check_invariants()
