"""Unit tests for the Algorithm 1 framework and shared base types."""

from __future__ import annotations

import pytest

from repro.core.base import CandidateGroup, JoinResult, JoinStats
from repro.core.framework import SignatureJoinBase, insert_into_groups
from repro.relations.relation import Relation, SetRecord


class TestCandidateGroups:
    def test_insert_merges_identical_sets(self):
        groups: list[CandidateGroup] = []
        insert_into_groups(groups, SetRecord(1, frozenset({1, 2})))
        insert_into_groups(groups, SetRecord(2, frozenset({1, 2})))
        insert_into_groups(groups, SetRecord(3, frozenset({1, 3})))
        assert len(groups) == 2
        assert groups[0].ids == [1, 2]
        assert groups[1].ids == [3]

    def test_groups_keep_insertion_order(self):
        groups: list[CandidateGroup] = []
        for i, s in enumerate([{1}, {2}, {1}]):
            insert_into_groups(groups, SetRecord(i, frozenset(s)))
        assert [g.elements for g in groups] == [frozenset({1}), frozenset({2})]


class TestJoinStats:
    def test_total_and_fraction(self):
        stats = JoinStats(build_seconds=1.0, probe_seconds=3.0)
        assert stats.total_seconds == 4.0
        assert stats.build_fraction == 0.25

    def test_zero_time_fraction(self):
        assert JoinStats().build_fraction == 0.0

    def test_precision_no_verifications(self):
        assert JoinStats().precision == 1.0

    def test_precision_with_false_positives(self):
        stats = JoinStats(verifications=10)
        stats.pairs = 4
        assert stats.precision == 0.4


class TestJoinResult:
    def test_pairs_synced_into_stats(self):
        result = JoinResult([(1, 2), (3, 4)], JoinStats())
        assert result.stats.pairs == 2

    def test_pair_set_and_sorted(self):
        result = JoinResult([(3, 1), (1, 2)], JoinStats())
        assert result.pair_set() == {(3, 1), (1, 2)}
        assert result.sorted_pairs() == [(1, 2), (3, 1)]


class _RecordingJoin(SignatureJoinBase):
    """Minimal concrete framework instance used to test the template."""

    name = "recording"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.groups: list[CandidateGroup] = []

    def _build_index(self, s, stats):
        for rec in s:
            insert_into_groups(self.groups, rec)

    def _enumerate_groups(self, signature, stats):
        # Degenerate enumeration: every group is a candidate.
        yield self.groups


class TestFrameworkTemplate:
    def test_template_produces_correct_join(self):
        r = Relation.from_sets([{1, 2, 3}, {4}])
        s = Relation.from_sets([{1, 2}, {4}, {5}])
        result = _RecordingJoin(bits=16).join(r, s)
        assert result.pair_set() == {(0, 0), (1, 1)}

    def test_verification_counts_all_candidates(self):
        r = Relation.from_sets([{1}])
        s = Relation.from_sets([{1}, {2}, {3}])
        stats = _RecordingJoin(bits=16).join(r, s).stats
        assert stats.verifications == 3
        assert stats.candidates == 3

    def test_bits_strategy_used_when_unspecified(self):
        r = Relation.from_sets([set(range(16))])
        s = Relation.from_sets([set(range(8))])
        result = _RecordingJoin().join(r, s)
        # avg c = 12 -> 16 * 12 = 192, capped by domain 16.
        assert result.stats.signature_bits == 16

    def test_explicit_bits_win(self):
        r = Relation.from_sets([{1}])
        s = Relation.from_sets([{1}])
        assert _RecordingJoin(bits=77).join(r, s).stats.signature_bits == 77

    def test_timings_recorded(self):
        r = Relation.from_sets([{1}] * 50)
        s = Relation.from_sets([{1}] * 50)
        stats = _RecordingJoin(bits=8).join(r, s).stats
        assert stats.build_seconds >= 0.0
        assert stats.probe_seconds > 0.0
