"""Unit tests for the k-bisimulation encoder (twitter substrate)."""

from __future__ import annotations

import pytest

from repro.datagen.bisimulation import (
    kbisim_blocks,
    kbisim_relation,
    random_power_law_digraph,
)
from repro.errors import DataGenError


def path_graph(n: int) -> dict[int, list[int]]:
    """0 -> 1 -> 2 -> ... -> n-1."""
    return {i: ([i + 1] if i + 1 < n else []) for i in range(n)}


class TestKBisimBlocks:
    def test_depth_zero_one_block(self):
        blocks = kbisim_blocks(path_graph(5), k=0)
        assert set(blocks.values()) == {0}

    def test_depth_one_splits_by_out_degree_profile(self):
        # In a path, after one refinement the sink differs from the rest.
        blocks = kbisim_blocks(path_graph(4), k=1)
        assert blocks[3] != blocks[0]
        assert blocks[0] == blocks[1] == blocks[2]

    def test_path_fully_refines_at_depth_n(self):
        """A path of n nodes needs n-1 refinements to split completely."""
        n = 6
        blocks = kbisim_blocks(path_graph(n), k=n)
        assert len(set(blocks.values())) == n

    def test_symmetric_nodes_stay_together(self):
        # Two disjoint identical triangles: all nodes bisimilar forever.
        graph = {0: [1], 1: [2], 2: [0], 3: [4], 4: [5], 5: [3]}
        blocks = kbisim_blocks(graph, k=10)
        assert len(set(blocks.values())) == 1

    def test_fixpoint_early_exit(self):
        # A cycle stabilises immediately; deep k must still be correct.
        graph = {0: [1], 1: [0]}
        assert kbisim_blocks(graph, k=100) == kbisim_blocks(graph, k=2)

    def test_negative_depth_rejected(self):
        with pytest.raises(DataGenError):
            kbisim_blocks(path_graph(3), k=-1)

    def test_dangling_successor_rejected(self):
        with pytest.raises(DataGenError):
            kbisim_blocks({0: [99]}, k=1)


class TestKBisimRelation:
    def test_one_tuple_per_block(self):
        graph = path_graph(5)
        relation, _ = kbisim_relation(graph, k=5)
        blocks = kbisim_blocks(graph, k=5)
        assert len(relation) == len(set(blocks.values()))

    def test_universe_decodes_features(self):
        relation, universe = kbisim_relation(path_graph(4), k=2)
        for rec in relation:
            for feature in rec.elements:
                level, block = universe.decode(feature)
                assert 1 <= level <= 2
                assert block >= 0

    def test_deeper_k_gives_richer_sets(self):
        graph = random_power_law_digraph(80, avg_out_degree=4, seed=30)
        shallow, _ = kbisim_relation(graph, k=1)
        deep, _ = kbisim_relation(graph, k=4)
        shallow_avg = sum(r.cardinality for r in shallow) / len(shallow)
        deep_avg = sum(r.cardinality for r in deep) / len(deep)
        assert deep_avg > shallow_avg

    def test_negative_depth_rejected(self):
        with pytest.raises(DataGenError):
            kbisim_relation({0: []}, k=-2)


class TestRandomGraph:
    def test_shape(self):
        graph = random_power_law_digraph(100, avg_out_degree=5, seed=31)
        assert len(graph) == 100
        assert all(0 <= t < 100 for targets in graph.values() for t in targets)

    def test_no_self_loops(self):
        graph = random_power_law_digraph(50, avg_out_degree=6, seed=32)
        assert all(v not in targets for v, targets in graph.items())

    def test_deterministic(self):
        a = random_power_law_digraph(40, 3, seed=33)
        b = random_power_law_digraph(40, 3, seed=33)
        assert a == b

    def test_skewed_in_degree(self):
        graph = random_power_law_digraph(200, avg_out_degree=6, seed=34)
        in_deg = [0] * 200
        for targets in graph.values():
            for t in targets:
                in_deg[t] += 1
        # Zipf targeting: low node ids should attract far more edges.
        assert max(in_deg[:5]) > 5 * (sum(in_deg) / len(in_deg))

    def test_invalid_params(self):
        with pytest.raises(DataGenError):
            random_power_law_digraph(0, 3)
        with pytest.raises(DataGenError):
            random_power_law_digraph(10, 0)
