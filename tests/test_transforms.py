"""Unit tests for relation densification and relabelling."""

from __future__ import annotations

from repro.relations.relation import Relation
from repro.relations.transforms import apply_universe, densify, relabel_by_frequency
from tests.conftest import oracle_pairs, random_relation


class TestDensify:
    def test_remaps_to_dense_domain(self):
        rel, uni = densify(Relation.from_sets([{10 ** 9, 7}, {7, 55}]))
        assert rel.domain() == frozenset({0, 1, 2})
        assert len(uni) == 3

    def test_decode_recovers_original(self):
        original = Relation.from_sets([{100, 200}, {300}])
        dense, uni = densify(original)
        for rec, orig in zip(dense, original):
            assert uni.decode_set(rec.elements) == orig.elements

    def test_preserves_ids_and_containment(self):
        rel = random_relation(60, 6, 5000, seed=930, start_id=10)
        dense, _ = densify(rel)
        assert dense.ids() == rel.ids()
        assert oracle_pairs(dense, dense) == oracle_pairs(rel, rel)

    def test_deterministic_first_seen_order(self):
        rel = Relation.from_sets([{5, 3}, {9, 3}])
        dense_a, _ = densify(rel)
        dense_b, _ = densify(rel)
        assert dense_a == dense_b

    def test_empty_relation(self):
        dense, uni = densify(Relation([]))
        assert len(dense) == 0 and len(uni) == 0


class TestRelabelByFrequency:
    def test_most_frequent_is_zero(self):
        rel = Relation.from_sets([{7, 9}, {7}, {7, 11}])
        dense, uni = relabel_by_frequency(rel)
        assert uni.decode(0) == 7

    def test_ties_break_by_original_id(self):
        rel = Relation.from_sets([{5}, {3}])
        _, uni = relabel_by_frequency(rel)
        assert uni.decode(0) == 3 and uni.decode(1) == 5

    def test_containment_preserved(self):
        rel = random_relation(50, 6, 200, seed=931)
        dense, _ = relabel_by_frequency(rel)
        assert oracle_pairs(dense, dense) == oracle_pairs(rel, rel)


class TestApplyUniverse:
    def test_shared_dictionary_keeps_join_semantics(self):
        from repro.core.registry import set_containment_join

        r = random_relation(40, 6, 10 ** 6, seed=932)
        s = random_relation(40, 4, 10 ** 6, seed=933)
        dense_s, uni = densify(s)
        dense_r = apply_universe(r, uni)
        expected = oracle_pairs(r, s)
        got = set_containment_join(dense_r, dense_s, algorithm="ptsj").pair_set()
        assert got == expected

    def test_unseen_elements_extend_dictionary(self):
        base, uni = densify(Relation.from_sets([{1, 2}]))
        before = len(uni)
        apply_universe(Relation.from_sets([{99}]), uni)
        assert len(uni) == before + 1
