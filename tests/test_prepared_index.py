"""Tests for the build-once/probe-many prepared-index layer.

Covers the contract of :class:`repro.core.base.PreparedIndex` across every
registered algorithm: probe results and operation counters match the
one-shot ``join``, a prepared index serves many batches without rebuilding,
streaming probes stop verification work early, and cumulative statistics
count the build exactly once.
"""

from __future__ import annotations

import pytest

from repro.core.base import JoinStats, PreparedIndex
from repro.core.registry import (
    ALGORITHMS,
    choose_algorithm_name,
    make_algorithm,
    prepare_index,
)
from repro.errors import AlgorithmError
from repro.relations.relation import Relation, SetRecord
from tests.conftest import oracle_pairs, random_relation

ALL_NAMES = tuple(ALGORITHMS)

#: Algorithms whose constructor accepts an explicit signature length.
SIGNATURE_NAMES = ("ptsj", "shj", "tsj", "mwtsj", "trie-trie")

COUNTERS = ("candidates", "verifications", "node_visits", "intersections")


def pinned_kwargs(name: str) -> dict:
    """Kwargs that make index parameters independent of any probe hint."""
    return {"bits": 64} if name in SIGNATURE_NAMES else {}


@pytest.fixture
def batches() -> tuple[Relation, Relation, Relation]:
    """(s, r1, r2) with disjoint probe ids so batches can be unioned."""
    s = random_relation(50, 5, 36, seed=81)
    r1 = random_relation(30, 8, 36, seed=82)
    r2 = random_relation(30, 8, 36, seed=83, start_id=30)
    return s, r1, r2


class TestParityWithJoin:
    """prepare + probe_many reproduces join() bit for bit."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_pairs_and_counters_match_hinted_prepare(self, name, small_pair):
        r, s = small_pair
        legacy = make_algorithm(name).join(r, s)
        index = make_algorithm(name).prepare(s, probe_hint=r)
        result = index.probe_many(r)
        assert result.pair_set() == legacy.pair_set()
        assert result.stats.signature_bits == legacy.stats.signature_bits
        assert result.stats.index_nodes == legacy.stats.index_nodes
        for counter in COUNTERS:
            assert getattr(result.stats, counter) == getattr(legacy.stats, counter), counter

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_pairs_and_counters_match_unhinted_prepare(self, name, small_pair):
        """With pinned parameters, a hint-free prepare is also identical."""
        r, s = small_pair
        kwargs = pinned_kwargs(name)
        legacy = make_algorithm(name, **kwargs).join(r, s)
        result = make_algorithm(name, **kwargs).prepare(s).probe_many(r)
        assert result.pair_set() == legacy.pair_set()
        for counter in COUNTERS:
            assert getattr(result.stats, counter) == getattr(legacy.stats, counter), counter

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_matches_oracle(self, name, small_pair):
        r, s = small_pair
        index = make_algorithm(name, **pinned_kwargs(name)).prepare(s)
        assert index.probe_many(r).pair_set() == oracle_pairs(r, s)


class TestIndexReuse:
    """One build serves any number of probe batches."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_two_batches_equal_combined_join(self, name, batches):
        s, r1, r2 = batches
        kwargs = pinned_kwargs(name)
        index = make_algorithm(name, **kwargs).prepare(s)
        got = index.probe_many(r1).pair_set() | index.probe_many(r2).pair_set()
        combined = Relation(list(r1) + list(r2))
        want = make_algorithm(name, **kwargs).join(combined, s).pair_set()
        assert got == want

    def test_second_probe_performs_no_build(self, batches):
        s, r1, r2 = batches
        index = prepare_index(s, algorithm="ptsj")
        first = index.probe_many(r1)
        second = index.probe_many(r2)
        assert first.stats.build_seconds == 0.0
        assert second.stats.build_seconds == 0.0
        assert first.stats.extras["probe_calls"] == 1
        assert first.stats.extras["reused_index"] == 0
        assert second.stats.extras["probe_calls"] == 2
        assert second.stats.extras["reused_index"] == 1

    def test_join_sets_build_time_probe_many_does_not(self, batches):
        s, r1, _ = batches
        joined = make_algorithm("ptsj").join(r1, s)
        assert joined.stats.build_seconds > 0.0
        index = prepare_index(s, algorithm="ptsj")
        assert index.build_seconds > 0.0
        assert index.probe_many(r1).stats.build_seconds == 0.0

    def test_index_survives_later_prepare_on_same_instance(self, batches):
        """A prepared index is a snapshot; rebuilding cannot corrupt it."""
        s, r1, _ = batches
        algorithm = make_algorithm("ptsj", bits=64)
        index = algorithm.prepare(s)
        want = index.probe_many(r1).pair_set()
        algorithm.prepare(random_relation(20, 3, 36, seed=99))
        assert index.probe_many(r1).pair_set() == want

    def test_probe_calls_property(self, batches):
        s, r1, r2 = batches
        index = prepare_index(s, algorithm="pretti")
        assert index.probe_calls == 0
        index.probe_many(r1)
        index.probe_many(r2)
        assert index.probe_calls == 2
        assert len(index) == len(s)


class TestStreamingProbe:
    """probe() is a lazy generator: early exit skips remaining work."""

    def test_single_record_probe_matches_oracle(self, small_pair):
        r, s = small_pair
        index = prepare_index(s, algorithm="ptsj", bits=64)
        for rec in r:
            got = set(index.probe(rec, JoinStats()))
            want = {ss.rid for ss in s if rec.elements >= ss.elements}
            assert got == want

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_streaming_matches_probe_many(self, name, small_pair):
        r, s = small_pair
        index = make_algorithm(name, **pinned_kwargs(name)).prepare(s)
        want = index.probe_many(r).pair_set()
        got = {
            (rec.rid, s_id)
            for rec in r
            for s_id in index.probe(rec, JoinStats())
        }
        assert got == want

    def test_early_exit_skips_verifications(self):
        """Consuming one match runs only the verifications needed for it."""
        s = Relation.from_sets([{i} for i in range(50)])
        index = prepare_index(s, algorithm="ptsj", bits=64)
        record = SetRecord(0, frozenset(range(50)))

        full = JoinStats()
        assert sum(1 for _ in index.probe(record, full)) == 50
        assert full.verifications == 50

        partial = JoinStats()
        gen = index.probe(record, partial)
        next(gen)
        gen.close()
        assert partial.verifications < full.verifications

    def test_probe_without_stats_accumulates_on_index(self, small_pair):
        r, s = small_pair
        index = prepare_index(s, algorithm="ptsj", bits=64)
        record = next(iter(r))
        list(index.probe(record))
        assert index.join_stats().extras["probe_records"] == 1


class TestCumulativeStats:
    def test_join_stats_counts_build_once(self, batches):
        s, r1, r2 = batches
        index = prepare_index(s, algorithm="ptsj", bits=64)
        a = index.probe_many(r1)
        b = index.probe_many(r2)
        total = index.join_stats()
        assert total.build_seconds == index.build_seconds
        assert total.probe_seconds == pytest.approx(
            a.stats.probe_seconds + b.stats.probe_seconds
        )
        for counter in COUNTERS:
            assert getattr(total, counter) == (
                getattr(a.stats, counter) + getattr(b.stats, counter)
            ), counter
        assert total.pairs == a.stats.pairs + b.stats.pairs
        assert total.extras["probe_calls"] == 2
        assert total.extras["reused_index"] == 1
        assert total.extras["probe_records"] == len(r1) + len(r2)

    def test_build_extras_copied_into_probe_stats(self, batches):
        s, r1, _ = batches
        index = prepare_index(s, algorithm="shj")
        result = index.probe_many(r1)
        assert result.stats.extras["partial_bits"] == index.build_extras["partial_bits"]


class TestPrepareIndexRegistry:
    def test_auto_follows_regime_rule(self, batches):
        s, _, _ = batches
        index = prepare_index(s)
        assert index.algorithm == choose_algorithm_name(s)

    def test_explicit_algorithm_and_alias(self, batches):
        s, _, _ = batches
        assert prepare_index(s, algorithm="nested_loop").algorithm == "nested-loop"
        assert isinstance(prepare_index(s, algorithm="PTSJ"), PreparedIndex)

    def test_unknown_algorithm_raises(self, batches):
        s, _, _ = batches
        with pytest.raises(AlgorithmError):
            prepare_index(s, algorithm="nope")

    def test_probe_hint_matches_join_parameterisation(self, small_pair):
        r, s = small_pair
        hinted = prepare_index(s, algorithm="ptsj", probe_hint=r)
        joined = make_algorithm("ptsj").join(r, s)
        assert hinted.signature_bits == joined.stats.signature_bits


class TestExtensionReuse:
    def test_patricia_set_index_adopts_prepared_trie(self, small_pair):
        from repro.extensions import PatriciaSetIndex

        r, s = small_pair
        index = prepare_index(s, algorithm="ptsj", bits=64)
        patricia = PatriciaSetIndex.from_prepared(index)
        assert patricia.trie is index.trie
        for rec in r:
            got = {rid for g in patricia.subsets_of(rec.elements) for rid in g.ids}
            assert got == set(index.probe(rec, JoinStats()))

    def test_from_prepared_rejects_non_patricia_indexes(self, small_pair):
        from repro.extensions import PatriciaSetIndex

        _, s = small_pair
        with pytest.raises(AlgorithmError):
            PatriciaSetIndex.from_prepared(prepare_index(s, algorithm="pretti"))

    def test_build_patricia_index_empty_relation_raises(self):
        from repro.extensions import build_patricia_index

        with pytest.raises(AlgorithmError):
            build_patricia_index(Relation([]))
