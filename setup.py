"""Legacy setup shim.

The execution environment has no ``wheel`` package (offline), so PEP 660
editable installs (which build an editable wheel) cannot run.  This shim
lets ``pip install -e . --no-use-pep517`` / ``python setup.py develop``
perform a classic egg-link editable install.  All project metadata lives in
``pyproject.toml``; this file adds nothing beyond the entry point.
"""

from setuptools import setup

setup()
