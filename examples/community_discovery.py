#!/usr/bin/env python3
"""Community discovery over membership sets (the paper's orkut scenario).

In the Orkut dataset each person is a tuple whose set is the communities
they belong to.  The paper notes a set-containment join "can help people
discover new communities and new friends with similar hobbies":

* **friend suggestion** — person A's memberships contain person B's:
  everything B joined, A joined too, so B is a strong friend candidate
  for A (containment join, this file's step 2);
* **community discovery** — a *superset* join of a user's interest sets
  against richer members finds people to copy communities from
  (Sec. III-E2's superset join on the same index, step 3).

This example also demonstrates the disk-based partitioned execution
(Sec. III-E4) on the same workload, with its quadratic partition I/O
visible in the stats.

Run:  python examples/community_discovery.py
"""

from __future__ import annotations

from collections import Counter

from repro import set_containment_join
from repro.bench.reporting import fmt_seconds
from repro.datagen.realworld import orkut_surrogate
from repro.exec import disk_partitioned_join
from repro.extensions.set_index import PatriciaSetIndex
from repro.extensions.superset import superset_join_on_index
from repro.relations import compute_stats

SIZE = 600


def main() -> None:
    people = orkut_surrogate(size=SIZE, seed=9)
    stats = compute_stats(people)
    print(f"membership relation: {stats.as_table_row()} "
          f"(min c = {stats.min_cardinality}, like the paper's c >= 10 pruning)")

    # Step 2: friend suggestion by membership containment.
    result = set_containment_join(people, people, algorithm="auto")
    print(f"\n{result.stats.algorithm}: {len(result)} containment pairs in "
          f"{fmt_seconds(result.stats.total_seconds)}")
    coverage = Counter(r_id for r_id, s_id in result.pairs if r_id != s_id)
    print("most 'covering' members (their memberships contain most others'):")
    for person, count in coverage.most_common(3):
        print(f"  person {person:4d} covers {count} other members "
              f"({people.get(person).cardinality} communities)")

    # Step 3: superset join on a reusable Patricia index.
    index = PatriciaSetIndex(people)
    supersets = superset_join_on_index(people, index)
    proper = [(a, b) for a, b in supersets.pairs if a != b]
    print(f"\nsuperset join on the same index: {len(proper)} proper "
          f"'people to learn communities from' pairs in "
          f"{fmt_seconds(supersets.stats.probe_seconds)}")

    # Step 4: the same join, disk-partitioned (Sec. III-E4).
    disk = disk_partitioned_join(people, people, algorithm="ptsj", max_tuples=200)
    assert disk.pair_set() == result.pair_set()
    extras = disk.stats.extras
    print(f"\ndisk-based PTSJ over {int(extras['r_partitions'])}x"
          f"{int(extras['s_partitions'])} partitions: same {len(disk)} pairs, "
          f"{int(extras['partition_loads'])} partition loads "
          f"(quadratic in partition count, as Sec. III-E4 predicts)")


if __name__ == "__main__":
    main()
