#!/usr/bin/env python3
"""A living product catalog: dynamic index maintenance + validation.

The paper's OLAP pitch (Sec. III-E) is an index built once and reused for
many query types.  A production system also needs the index to *change*:
products appear, change their feature sets, and disappear.  This example
runs a small e-commerce scenario on one
:class:`~repro.extensions.PatriciaSetIndex`:

1. index a catalog of products by their feature sets;
2. answer "which products do I fully cover?" (subset probe), "which
   products have everything I want?" (superset probe) and "close
   alternatives" (Hamming similarity) — all off the same index;
3. apply a day of catalog churn with ``add`` / ``discard`` and show the
   answers stay correct, cross-checked by the independent validator
   (:func:`repro.verify_join_result`).

Run:  python examples/streaming_catalog.py
"""

from __future__ import annotations

import random

from repro import Relation, Universe, verify_join_result
from repro.extensions import PatriciaSetIndex, superset_join_on_index

FEATURES = [
    "bluetooth", "usb-c", "wireless", "waterproof", "noise-cancelling",
    "fast-charge", "solar", "gps", "heart-rate", "nfc", "5g", "e-ink",
    "oled", "backlit", "mechanical", "ergonomic",
]


def random_catalog(universe: Universe, count: int, seed: int) -> dict[int, frozenset[int]]:
    rng = random.Random(seed)
    return {
        pid: universe.encode_set(rng.sample(FEATURES, rng.randint(2, 6)))
        for pid in range(count)
    }


def main() -> None:
    universe = Universe(FEATURES)
    catalog = random_catalog(universe, 120, seed=13)
    index = PatriciaSetIndex(Relation.from_mapping(catalog, name="catalog"))
    print(f"indexed {len(index)} products over {len(universe)} features "
          f"(signature length {index.bits} bits)")

    wanted = universe.encode_set({"bluetooth", "wireless", "fast-charge"})
    has_all = sorted(pid for g in index.supersets_of(wanted) for pid in g.ids)
    print(f"\nproducts with ALL of bluetooth+wireless+fast-charge: "
          f"{len(has_all)} (e.g. {has_all[:6]})")

    # A day of churn: discontinue some products, launch others, respec a few.
    rng = random.Random(99)
    discontinued = rng.sample(sorted(catalog), 25)
    for pid in discontinued:
        assert index.discard(pid, catalog.pop(pid))
    for pid in range(1000, 1030):
        features = universe.encode_set(rng.sample(FEATURES, rng.randint(2, 6)))
        catalog[pid] = features
        index.add(pid, features)
    respecced = rng.sample(sorted(catalog), 10)
    for pid in respecced:
        index.discard(pid, catalog[pid])
        catalog[pid] = universe.encode_set(rng.sample(FEATURES, rng.randint(2, 6)))
        index.add(pid, catalog[pid])
    index.trie.check_invariants()
    print(f"\nafter churn (-25, +30, ~10 respecs): {len(index)} products; "
          f"trie invariants hold")

    # Re-derive the current relation and validate a full superset join
    # against the (never-rebuilt) dynamic index.
    current = Relation.from_mapping(catalog, name="catalog-now")
    queries = Relation.from_sets(
        [universe.encode_set(rng.sample(FEATURES, 3)) for _ in range(40)],
        name="shopper-wishlists",
    )
    result = superset_join_on_index(queries, index)
    # The superset join finds s with s.set >= query: validate via the
    # containment validator on the transposed pairs.
    report = verify_join_result(current, queries,
                                [(s_id, q_id) for q_id, s_id in result.pairs],
                                sample=None)
    report.raise_on_failure()
    print(f"\n{len(result)} wishlist matches from the live index — "
          f"independently validated over {report.checked_candidates} "
          f"candidate pairs: OK")


if __name__ == "__main__":
    main()
