#!/usr/bin/env python3
"""Graph-similarity detection via k-bisimulation containment (twitter case).

The paper derives its *twitter* dataset from k-bisimulation of a graph
[28]: nodes are partitioned by their 5-step neighbourhood structure, each
partition becomes a tuple whose set encodes that neighbourhood, and a
set-containment join over those sets supports "graph similarity detection
and graph query answering" (Sec. V-A2).

This example runs the entire pipeline from scratch:

1. generate a random power-law digraph;
2. compute its 5-bisimulation partition and encoded neighbourhood sets
   (:mod:`repro.datagen.bisimulation`);
3. containment-join the partition relation with itself — partition P
   "structurally subsumes" partition Q when P's neighbourhood features
   contain Q's;
4. reuse the same Patricia index for a Hamming set-similarity join
   (Sec. III-E3) to find *near-duplicate* structures.

Run:  python examples/graph_similarity.py
"""

from __future__ import annotations

from repro import PTSJ
from repro.bench.reporting import fmt_seconds
from repro.datagen.bisimulation import kbisim_relation, random_power_law_digraph
from repro.extensions.set_index import PatriciaSetIndex
from repro.extensions.similarity import similarity_join_on_index
from repro.relations import compute_stats

NODES = 400
DEPTH = 5  # the paper uses 5-step neighbourhoods


def main() -> None:
    graph = random_power_law_digraph(NODES, avg_out_degree=6.0, seed=7)
    edges = sum(len(ts) for ts in graph.values())
    print(f"graph: {NODES} nodes, {edges} edges")

    partitions, universe = kbisim_relation(graph, k=DEPTH)
    stats = compute_stats(partitions)
    print(f"{DEPTH}-bisimulation: {stats.size} partitions, "
          f"avg |features| = {stats.avg_cardinality:.1f}, "
          f"feature domain = {stats.domain_cardinality} "
          f"(= {len(universe)} (level, block) pairs)")

    # Structural subsumption between partitions (medium cardinality:
    # the regime where the paper's Fig. 8 shows PTSJ winning on twitter).
    algo = PTSJ()
    result = algo.join(partitions, partitions)
    proper = [(a, b) for a, b in result.pairs if a != b]
    print(f"\nPTSJ containment self-join: {len(result)} pairs "
          f"({len(proper)} proper subsumptions) in "
          f"{fmt_seconds(result.stats.total_seconds)}; "
          f"signature length {result.stats.signature_bits} bits, "
          f"{result.stats.node_visits} trie-node visits")
    for a, b in proper[:5]:
        print(f"  partition {a} subsumes partition {b} "
              f"(|{partitions.get(a).cardinality}| >= |{partitions.get(b).cardinality}| features)")

    # Index reuse (Sec. III-E3): the same trie answers similarity queries.
    index = PatriciaSetIndex(partitions)
    near = similarity_join_on_index(partitions, index, threshold=10)
    near_pairs = [(a, b) for a, b in near.pairs if a < b]
    print(f"\nsimilarity join (|A delta B| <= 10) on the same index: "
          f"{len(near_pairs)} near-duplicate partition pairs in "
          f"{fmt_seconds(near.stats.probe_seconds)}")
    for a, b in near_pairs[:5]:
        delta = len(partitions.get(a).elements ^ partitions.get(b).elements)
        print(f"  partitions {a} and {b} differ in {delta} features")


if __name__ == "__main__":
    main()
