#!/usr/bin/env python3
"""Quickstart: the paper's Table I dating-site example, end to end.

An online dating site keeps a *profile* set per user (their
characteristics) and a *preference* set per user (the characteristics they
look for).  A set-containment join of profiles with preferences pairs each
preference set with every user whose profile contains all desired
characteristics — the paper's running example.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Relation, Universe, set_containment_join
from repro.relations import compute_stats

PROFILES = {
    "u1": {"beach", "dogs", "films", "gardening"},
    "u2": {"art", "cooking", "hiking"},
    "u3": {"art", "cooking", "dogs"},
}

PREFERENCES = {
    "p1": {"beach", "dogs"},
    "p2": {"beach", "films", "gardening"},
    "p3": {"art", "cooking", "hiking"},
}


def main() -> None:
    # 1. Encode string characteristics into dense integer element ids.
    universe = Universe()
    profile_names = list(PROFILES)
    preference_names = list(PREFERENCES)
    profiles = Relation.from_sets(
        [universe.encode_set(PROFILES[name]) for name in profile_names],
        name="profiles",
    )
    preferences = Relation.from_sets(
        [universe.encode_set(PREFERENCES[name]) for name in preference_names],
        name="preferences",
    )

    # 2. One call: profiles >= preferences.  algorithm="auto" applies the
    #    paper's regime rule (PRETTI+ for low set cardinality, PTSJ else).
    result = set_containment_join(profiles, preferences, algorithm="auto")

    # 3. Report matches, decoding ids back to names.
    print(f"algorithm chosen: {result.stats.algorithm}")
    print(f"dataset: {compute_stats(preferences).as_table_row()}")
    print(f"{len(result)} potential matches:")
    for r_id, s_id in result.sorted_pairs():
        user = profile_names[r_id]
        pref = preference_names[s_id]
        wanted = ", ".join(sorted(PREFERENCES[pref]))
        print(f"  {pref} ({wanted})  ->  {user}")

    expected = {("u1", "p1"), ("u1", "p2"), ("u2", "p3")}
    got = {
        (profile_names[r_id], preference_names[s_id])
        for r_id, s_id in result.pairs
    }
    assert got == expected, f"unexpected join result: {got}"
    print("matches the paper's Table I result: "
          "{(u1, p1), (u1, p2), (u2, p3)}")


if __name__ == "__main__":
    main()
