#!/usr/bin/env python3
"""Photo recommendation by tag containment (the paper's flickr scenario).

Each photo carries a set of tags.  Photo B is *recommendable from* photo A
when A's tags contain all of B's tags (whoever liked the richly-tagged A
should also like the more general B).  That is exactly the containment
relation the paper computes over the Flickr-3.5M dataset (Table III,
low-cardinality regime), where it reports PRETTI+ as the clear winner.

This example builds a flickr-shaped surrogate, lets the auto-selector pick
the algorithm (it picks PRETTI+ for this shape), and prints the top
recommendation hubs plus the algorithm comparison on the same data.

Run:  python examples/photo_tag_recommendation.py
"""

from __future__ import annotations

from collections import Counter

from repro import set_containment_join
from repro.bench.reporting import fmt_seconds, format_table
from repro.datagen.realworld import flickr_surrogate
from repro.relations import compute_stats

SIZE = 1200


def main() -> None:
    photos = flickr_surrogate(size=SIZE, seed=42)
    stats = compute_stats(photos)
    print(f"photo collection: {stats.as_table_row()}")
    print(f"regime rule recommends: {stats.recommended_algorithm()}")

    # Self-join: photo A recommends photo B when tags(A) >= tags(B).
    result = set_containment_join(photos, photos, algorithm="auto")
    print(f"\n{result.stats.algorithm}: {len(result)} containment pairs "
          f"in {fmt_seconds(result.stats.total_seconds)}")

    # The most-contained photos are generic hubs (few, popular tags):
    # good candidates to recommend broadly.
    contained_counts = Counter(s_id for _, s_id in result.pairs)
    print("\ntop recommendation hubs (photo id, #containing photos, #tags):")
    for photo_id, count in contained_counts.most_common(5):
        cardinality = photos.get(photo_id).cardinality
        print(f"  photo {photo_id:5d}  contained in {count:5d} photos, "
              f"{cardinality} tags")

    # Cross-check the regime rule: compare all four algorithms here.
    rows = []
    for name in ("pretti+", "pretti", "ptsj", "shj"):
        run = set_containment_join(photos, photos, algorithm=name)
        rows.append([name, len(run), fmt_seconds(run.stats.total_seconds)])
        assert run.pair_set() == result.pair_set(), name
    print()
    print(format_table(["algorithm", "pairs", "time"], rows,
                       title="all algorithms, same data (low-cardinality regime)"))


if __name__ == "__main__":
    main()
