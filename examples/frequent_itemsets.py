#!/usr/bin/env python3
"""Frequent-itemset discovery via set-containment counting.

The paper's introduction motivates set-containment joins with data-mining
systems, citing Rantzau's "processing frequent itemset discovery queries
by division and set containment join operators" [7]: the *support* of a
candidate itemset is exactly the number of baskets whose item set
contains it — a superset count on a set index.

This example runs an Apriori-style level-wise search over a synthetic
market-basket relation, answering every support query from ONE
:class:`~repro.extensions.PatriciaSetIndex` built over the baskets
(supersets probe, Sec. III-E2), and cross-checks the result against a
brute-force count.

Run:  python examples/frequent_itemsets.py
"""

from __future__ import annotations

from itertools import combinations

from repro import Relation
from repro.datagen.synthetic import SyntheticConfig, generate_relation
from repro.extensions.set_index import PatriciaSetIndex

BASKETS = 800
ITEMS = 60
MIN_SUPPORT = 0.08  # fraction of baskets


def support(index: PatriciaSetIndex, itemset: frozenset[int]) -> int:
    """Number of baskets containing every item of ``itemset``."""
    return sum(len(group.ids) for group in index.supersets_of(itemset))


def apriori(baskets: Relation, min_count: int) -> dict[frozenset[int], int]:
    """Level-wise frequent-itemset mining, support via the set index."""
    index = PatriciaSetIndex(baskets)
    # Level 1: frequent single items.
    frequent: dict[frozenset[int], int] = {}
    level = []
    for item in sorted(baskets.domain()):
        count = support(index, frozenset({item}))
        if count >= min_count:
            itemset = frozenset({item})
            frequent[itemset] = count
            level.append(itemset)

    # Level k: join frequent (k-1)-itemsets, prune, count via the index.
    while level:
        candidates = set()
        for a, b in combinations(level, 2):
            union = a | b
            if len(union) == len(next(iter(level))) + 1:
                # Apriori pruning: every (k-1)-subset must be frequent.
                if all(union - {x} in frequent for x in union):
                    candidates.add(union)
        next_level = []
        for candidate in sorted(candidates, key=sorted):
            count = support(index, candidate)
            if count >= min_count:
                frequent[candidate] = count
                next_level.append(candidate)
        level = next_level
    return frequent


def main() -> None:
    baskets = generate_relation(
        SyntheticConfig(size=BASKETS, avg_cardinality=8, domain=ITEMS,
                        element_dist="zipf", zipf_skew=0.9, seed=77)
    )
    min_count = int(MIN_SUPPORT * len(baskets))
    print(f"{len(baskets)} baskets over {ITEMS} items; "
          f"min support {MIN_SUPPORT:.0%} ({min_count} baskets)")

    frequent = apriori(baskets, min_count)
    by_size: dict[int, int] = {}
    for itemset in frequent:
        by_size[len(itemset)] = by_size.get(len(itemset), 0) + 1
    print(f"\n{len(frequent)} frequent itemsets "
          f"({', '.join(f'{n} of size {k}' for k, n in sorted(by_size.items()))})")

    top = sorted(frequent.items(), key=lambda kv: (-kv[1], sorted(kv[0])))[:5]
    print("top itemsets by support:")
    for itemset, count in top:
        print(f"  {sorted(itemset)}  in {count} baskets ({count / len(baskets):.0%})")

    # Cross-check a few supports against brute force.
    for itemset, count in top:
        brute = sum(1 for rec in baskets if itemset <= rec.elements)
        assert brute == count, (itemset, brute, count)
    print("\nsupports cross-checked against brute-force counting: OK")


if __name__ == "__main__":
    main()
